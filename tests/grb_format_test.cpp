/**
 * @file
 * Tests for the storage-format auto-tuner and the SIMD pull kernels:
 * bit-identical results across csr / bitmap / sell row storages for
 * every kernel x descriptor x backend combination, tuner decisions on
 * synthetic degree distributions, the GAS_FORMAT override, the
 * structure invariants of RowBitmap and SellSlices, and the
 * bitmap-skip / lane-utilization counters.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdlib>
#include <map>
#include <numeric>

#include "matrix/grb.h"
#include "runtime/thread_pool.h"
#include "support/env.h"
#include "support/random.h"

namespace gas::grb {
namespace {

/// Scoped environment override, restoring the previous state on
/// destruction so no test leaks configuration into the rest of the
/// process (the CI format matrix runs this binary with GAS_FORMAT set).
class EnvGuard
{
  public:
    EnvGuard(const char* name, const char* value) : name_(name)
    {
        if (auto old = env::get(name)) {
            old_ = *old;
            had_old_ = true;
        }
        setenv(name, value, 1);
    }
    ~EnvGuard()
    {
        if (had_old_) {
            setenv(name_, old_.c_str(), 1);
        } else {
            unsetenv(name_);
        }
    }

  private:
    const char* name_;
    std::string old_;
    bool had_old_{false};
};

template <typename T>
std::map<Index, T>
to_model(const Vector<T>& v)
{
    std::map<Index, T> model;
    v.for_entries([&](Index i, T x) { model[i] = x; });
    return model;
}

template <typename T>
Matrix<T>
random_matrix(Index nrows, Index ncols, double density, uint64_t seed)
{
    std::vector<std::tuple<Index, Index, T>> tuples;
    Rng rng(seed);
    for (Index i = 0; i < nrows; ++i) {
        for (Index j = 0; j < ncols; ++j) {
            if (rng.next_double() < density) {
                tuples.emplace_back(i, j,
                                    static_cast<T>(1 + rng.next_bounded(9)));
            }
        }
    }
    return Matrix<T>::from_tuples(nrows, ncols, std::move(tuples));
}

template <typename T>
Vector<T>
random_vector(Index size, double density, uint64_t seed, bool dense)
{
    Vector<T> v(size);
    Rng rng(seed);
    for (Index i = 0; i < size; ++i) {
        if (rng.next_double() < density) {
            v.set_element(i, static_cast<T>(1 + rng.next_bounded(20)));
        }
    }
    if (dense) {
        v.densify();
    }
    return v;
}

/// Sparse mask mixing non-zero and explicit-zero entries so value and
/// structural mask semantics differ.
Vector<uint8_t>
mixed_mask(Index size, double density, uint64_t seed)
{
    Vector<uint8_t> v(size);
    Rng rng(seed);
    for (Index i = 0; i < size; ++i) {
        if (rng.next_double() < density) {
            v.set_element(i, static_cast<uint8_t>(rng.next_bounded(2)));
        }
    }
    return v;
}

/// Row-pointer array for a synthetic degree sequence.
std::vector<uint64_t>
row_ptr_of(const std::vector<uint64_t>& degrees)
{
    std::vector<uint64_t> row_ptr(degrees.size() + 1, 0);
    std::partial_sum(degrees.begin(), degrees.end(), row_ptr.begin() + 1);
    return row_ptr;
}

constexpr StorageFormat kAllFormats[] = {StorageFormat::kCsr,
                                         StorageFormat::kBitmapCsr,
                                         StorageFormat::kSell};

constexpr Descriptor kAllDescs[] = {
    kDefaultDesc,
    Descriptor{true, false, false},
    kReplaceDesc,
    kComplementReplaceDesc,
    kStructuralDesc,
    Descriptor{true, false, true},
    kStructuralComplementReplaceDesc,
};

struct FormatCase
{
    Backend backend;
    uint64_t seed;
};

class GrbFormatTest : public ::testing::TestWithParam<FormatCase>
{
  protected:
    void SetUp() override
    {
        rt::set_num_threads(4);
        set_backend(GetParam().backend);
    }

    void TearDown() override { set_backend(Backend::kParallel); }
};

// ---------------------------------------------------------------------
// Cross-format kernel equivalence.
// ---------------------------------------------------------------------

/// Run every kernel under each forced format and demand the CSR
/// reference's exact output, across all descriptor combos, dense and
/// sparse operands, with and without masks.
template <typename S, typename T>
void
expect_formats_equal(const Matrix<T>& proto, uint64_t seed)
{
    const Index n = proto.nrows();
    const Vector<T> u_full =
        random_vector<T>(proto.ncols(), 1.0, seed ^ 1, true);
    const Vector<T> u_part =
        random_vector<T>(proto.ncols(), 0.6, seed ^ 2, true);
    const Vector<T> u_sparse =
        random_vector<T>(proto.nrows(), 0.3, seed ^ 3, false);
    Vector<uint8_t> dense_mask = mixed_mask(n, 0.5, seed ^ 4);
    dense_mask.densify();
    const Vector<uint8_t> sparse_mask = mixed_mask(n, 0.3, seed ^ 5);

    for (const Descriptor& desc : kAllDescs) {
        // CSR reference outputs.
        Matrix<T> ref = proto;
        ref.set_storage_format(StorageFormat::kCsr);
        Vector<T> mxv_full_ref, mxv_part_ref, mxv_masked_ref,
            mxv_sparse_ref, vxm_ref;
        mxv<S>(mxv_full_ref, desc, ref, u_full);
        mxv<S>(mxv_part_ref, desc, ref, u_part);
        mxv<S>(mxv_masked_ref, &dense_mask, desc, ref, u_full);
        mxv_sparse<S>(mxv_sparse_ref, sparse_mask, desc, ref, u_full);
        vxm<S>(vxm_ref, &dense_mask, desc, u_sparse, ref);

        for (const StorageFormat format : kAllFormats) {
            SCOPED_TRACE(storage_format_name(format));
            Matrix<T> m = proto;
            m.set_storage_format(format);
            EXPECT_EQ(m.storage_format(), format);
            EXPECT_TRUE(m.format_tuning().forced);

            Vector<T> w;
            mxv<S>(w, desc, m, u_full);
            EXPECT_EQ(to_model(w), to_model(mxv_full_ref));
            mxv<S>(w, desc, m, u_part);
            EXPECT_EQ(to_model(w), to_model(mxv_part_ref));
            mxv<S>(w, &dense_mask, desc, m, u_full);
            EXPECT_EQ(to_model(w), to_model(mxv_masked_ref));
            mxv_sparse<S>(w, sparse_mask, desc, m, u_full);
            EXPECT_EQ(to_model(w), to_model(mxv_sparse_ref));
            vxm<S>(w, &dense_mask, desc, u_sparse, m);
            EXPECT_EQ(to_model(w), to_model(vxm_ref));
        }
    }
}

TEST_P(GrbFormatTest, KernelsAgreeAcrossFormatsU64)
{
    const uint64_t seed = GetParam().seed;
    // uint64_t has no SIMD hooks: this isolates the pure format paths
    // (bitmap row list, candidate filtering, SELL scalar fallback).
    const auto A = random_matrix<uint64_t>(61, 61, 0.07, seed);
    expect_formats_equal<PlusTimes<uint64_t>, uint64_t>(A, seed);
    expect_formats_equal<MinSecond<uint64_t>, uint64_t>(A, seed ^ 77);
}

TEST_P(GrbFormatTest, KernelsAgreeAcrossFormatsU32Simd)
{
    const uint64_t seed = GetParam().seed;
    // uint32_t PlusTimes / MinSecond have AVX2 hooks: the sell format
    // with a fully present u runs the vector sweep, long rows run the
    // within-row accumulation. Wraparound arithmetic is identical in
    // scalar and vector form, so outputs must still match exactly.
    const auto A = random_matrix<uint32_t>(70, 70, 0.3, seed);
    expect_formats_equal<PlusTimes<uint32_t>, uint32_t>(A, seed);
    expect_formats_equal<MinSecond<uint32_t>, uint32_t>(A, seed ^ 99);
}

TEST_P(GrbFormatTest, FlippedSemiringsAgreeAcrossFormats)
{
    const uint64_t seed = GetParam().seed;
    // The dispatcher's pull path wraps semirings in FlipMul; the SIMD
    // sweep must swap the multiply arguments the same way the scalar
    // loop does.
    const auto A = random_matrix<uint32_t>(48, 48, 0.25, seed);
    expect_formats_equal<FlipMul<MinSecond<uint32_t>>, uint32_t>(A, seed);
    expect_formats_equal<FlipMul<PlusTimes<uint32_t>>, uint32_t>(A,
                                                                 seed ^ 5);
}

TEST_P(GrbFormatTest, DoubleSellSweepIsBitIdentical)
{
    // The SELL sweep accumulates each row sequentially in its own lane
    // with separate mul and add (no FMA), so even floating-point
    // results must be bit-for-bit the scalar kernel's.
    const uint64_t seed = GetParam().seed;
    const auto proto = random_matrix<double>(100, 100, 0.15, seed);
    const Vector<double> u =
        random_vector<double>(100, 1.0, seed ^ 11, true);

    Matrix<double> csr = proto;
    csr.set_storage_format(StorageFormat::kCsr);
    Matrix<double> sell = proto;
    sell.set_storage_format(StorageFormat::kSell);

    Vector<double> w_csr, w_sell;
    mxv<PlusTimes<double>>(w_csr, kDefaultDesc, csr, u);
    mxv<PlusTimes<double>>(w_sell, kDefaultDesc, sell, u);

    const auto ref = to_model(w_csr);
    const auto got = to_model(w_sell);
    ASSERT_EQ(ref.size(), got.size());
    for (const auto& [i, x] : ref) {
        ASSERT_TRUE(got.contains(i));
        EXPECT_EQ(std::bit_cast<uint64_t>(x),
                  std::bit_cast<uint64_t>(got.at(i)))
            << "row " << i;
    }
}

TEST_P(GrbFormatTest, DispatcherAgreesAcrossFormats)
{
    const uint64_t seed = GetParam().seed;
    const auto proto = random_matrix<uint32_t>(64, 64, 0.12, seed);
    const auto proto_t = proto.transpose();
    const Vector<uint32_t> u =
        random_vector<uint32_t>(64, 0.2, seed ^ 21, false);
    Vector<uint32_t> dense_mask;
    {
        auto m = random_vector<uint32_t>(64, 0.5, seed ^ 22, true);
        dense_mask = std::move(m);
    }

    std::map<Index, uint32_t> ref;
    bool have_ref = false;
    for (const StorageFormat format : kAllFormats) {
        SCOPED_TRACE(storage_format_name(format));
        Matrix<uint32_t> A = proto;
        Matrix<uint32_t> At = proto_t;
        A.set_storage_format(format);
        At.set_storage_format(format);
        SpmvDispatcher<uint32_t> dispatcher(A, At);
        Vector<uint32_t> w;
        dispatcher.dispatch_spmv<PlusTimes<uint32_t>>(
            w, &dense_mask, kDefaultDesc, u);
        if (!have_ref) {
            ref = to_model(w);
            have_ref = true;
        } else {
            EXPECT_EQ(to_model(w), ref);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, GrbFormatTest,
    ::testing::Values(FormatCase{Backend::kReference, 0xF0},
                      FormatCase{Backend::kParallel, 0xF0},
                      FormatCase{Backend::kReference, 0xF1},
                      FormatCase{Backend::kParallel, 0xF1}));

// ---------------------------------------------------------------------
// GAS_SIMD switch: scalar and vector paths agree, counters attribute.
// ---------------------------------------------------------------------

TEST(GrbSimdTest, ScalarAndSimdPathsAgree)
{
    rt::set_num_threads(2);
    const auto proto = random_matrix<uint32_t>(90, 90, 0.2, 0xABC);
    const Vector<uint32_t> u =
        random_vector<uint32_t>(90, 1.0, 0xDEF, true);
    Matrix<uint32_t> sell = proto;
    sell.set_storage_format(StorageFormat::kSell);

    Vector<uint32_t> w_scalar;
    {
        EnvGuard off("GAS_SIMD", "0");
        EXPECT_FALSE(simd::simd_enabled());
        mxv<PlusTimes<uint32_t>>(w_scalar, kDefaultDesc, sell, u);
    }
    Vector<uint32_t> w_simd;
    metrics::Interval interval;
    mxv<PlusTimes<uint32_t>>(w_simd, kDefaultDesc, sell, u);
    EXPECT_EQ(to_model(w_scalar), to_model(w_simd));

    if (simd::cpu_has_avx2()) {
        // The vector path ran: lane slots were issued and utilization
        // can never exceed 1.
        const auto delta = interval.delta();
        EXPECT_GT(delta[metrics::kSimdLaneSlots], 0u);
        EXPECT_LE(delta[metrics::kSimdLanesActive],
                  delta[metrics::kSimdLaneSlots]);
        EXPECT_GT(delta[metrics::kSimdLanesActive], 0u);
    }
}

// ---------------------------------------------------------------------
// Bitmap skip behavior and counters.
// ---------------------------------------------------------------------

TEST(GrbBitmapTest, EmptyRowsSkippedAndCounted)
{
    rt::set_num_threads(2);
    // Rows 0..9 hold entries, rows 10..99 are empty.
    std::vector<std::tuple<Index, Index, uint64_t>> tuples;
    for (Index i = 0; i < 10; ++i) {
        for (Index j = 0; j < 5; ++j) {
            tuples.emplace_back(i, (i * 7 + j * 13) % 100, uint64_t{1});
        }
    }
    auto A =
        Matrix<uint64_t>::from_tuples(100, 100, std::move(tuples));
    A.set_storage_format(StorageFormat::kBitmapCsr);
    const Vector<uint64_t> u =
        random_vector<uint64_t>(100, 1.0, 0x10, true);

    metrics::Interval interval;
    Vector<uint64_t> w;
    mxv<PlusTimes<uint64_t>>(w, kDefaultDesc, A, u);
    EXPECT_EQ(interval.delta()[metrics::kRowsSkippedBitmap], 90u);

    Matrix<uint64_t> csr = A;
    csr.set_storage_format(StorageFormat::kCsr);
    Vector<uint64_t> w_ref;
    mxv<PlusTimes<uint64_t>>(w_ref, kDefaultDesc, csr, u);
    EXPECT_EQ(to_model(w), to_model(w_ref));

    // Push side: a dense frontier probing all 100 rows skips the 90
    // empty ones without touching their row pointers.
    metrics::Interval push_interval;
    vxm<PlusTimes<uint64_t>>(w, kDefaultDesc, u, A);
    EXPECT_EQ(push_interval.delta()[metrics::kRowsSkippedBitmap], 90u);
}

TEST(GrbBitmapTest, RowBitmapStructure)
{
    std::vector<uint64_t> degrees(130, 0);
    degrees[0] = 3;
    degrees[64] = 1;
    degrees[65] = 2;
    degrees[129] = 7;
    const auto row_ptr = row_ptr_of(degrees);
    const RowBitmap bitmap({row_ptr.data(), row_ptr.size()});

    EXPECT_EQ(bitmap.num_rows(), 130u);
    EXPECT_EQ(bitmap.num_nonempty(), 4u);
    EXPECT_TRUE(bitmap.nonempty(0));
    EXPECT_FALSE(bitmap.nonempty(1));
    EXPECT_TRUE(bitmap.nonempty(64));
    EXPECT_TRUE(bitmap.nonempty(65));
    EXPECT_TRUE(bitmap.nonempty(129));
    EXPECT_EQ(bitmap.rank(0), 0u);
    EXPECT_EQ(bitmap.rank(64), 1u);
    EXPECT_EQ(bitmap.rank(65), 2u);
    EXPECT_EQ(bitmap.rank(129), 3u);
    const auto rows = bitmap.nonempty_rows();
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0], 0u);
    EXPECT_EQ(rows[1], 64u);
    EXPECT_EQ(rows[2], 65u);
    EXPECT_EQ(rows[3], 129u);
}

// ---------------------------------------------------------------------
// SELL slice layout invariants.
// ---------------------------------------------------------------------

TEST(GrbSellTest, SliceLayoutRoundTrips)
{
    const auto A = random_matrix<uint32_t>(45, 45, 0.2, 0x5E11);
    const auto& sell = A.sell_slices();

    EXPECT_EQ(sell.num_rows(), 45u);
    EXPECT_EQ(sell.num_slices(), (45u + kSellLanes - 1) / kSellLanes);

    // perm is a permutation of all rows (phantom tail excluded).
    std::vector<bool> seen(45, false);
    for (Index slot = 0; slot < 45; ++slot) {
        const Index row = sell.perm()[slot];
        ASSERT_LT(row, 45u);
        EXPECT_FALSE(seen[row]);
        seen[row] = true;
    }

    // Rows sort by descending length within each sigma window, and
    // every row's entries round-trip through the column-major layout
    // in CSR order.
    for (Index s = 0; s < sell.num_slices(); ++s) {
        for (unsigned lane = 0; lane < kSellLanes; ++lane) {
            const std::size_t slot =
                static_cast<std::size_t>(s) * kSellLanes + lane;
            if (slot >= 45) {
                EXPECT_EQ(sell.len_of(s, lane), 0u);
                continue;
            }
            const Index row = sell.row_of(s, lane);
            const Index len = sell.len_of(s, lane);
            ASSERT_EQ(len, static_cast<Index>(A.row_nvals(row)));
            EXPECT_LE(len, sell.slice_width(s));
            if (lane > 0 && slot - 1 < 45) {
                EXPECT_GE(sell.len_of(s, lane - 1), len);
            }
            for (Index t = 0; t < len; ++t) {
                const uint64_t idx =
                    sell.slice_begin(s) + uint64_t{t} * kSellLanes + lane;
                EXPECT_EQ(sell.cols()[idx],
                          A.col_at(A.row_begin(row) + t));
                EXPECT_EQ(sell.vals()[idx],
                          A.val_at(A.row_begin(row) + t));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Tuner decisions on synthetic degree distributions.
// ---------------------------------------------------------------------

TEST(GrbTunerTest, UniformDegreesPickSell)
{
    // A road-grid-like profile: constant degree, zero variance, zero
    // padding.
    const std::vector<uint64_t> degrees(256, 8);
    const auto row_ptr = row_ptr_of(degrees);
    const auto stats =
        graph::compute_degree_stats({row_ptr.data(), row_ptr.size()});
    EXPECT_DOUBLE_EQ(stats.degree_cv, 0.0);
    EXPECT_DOUBLE_EQ(stats.sell_padding_overhead, 0.0);
    EXPECT_EQ(choose_format(stats), StorageFormat::kSell);
}

TEST(GrbTunerTest, MostlyEmptyRowsPickBitmap)
{
    // An RMAT-like profile: 99% isolated rows.
    std::vector<uint64_t> degrees(1000, 0);
    for (Index i = 0; i < 10; ++i) {
        degrees[i * 97] = 50;
    }
    const auto row_ptr = row_ptr_of(degrees);
    const auto stats =
        graph::compute_degree_stats({row_ptr.data(), row_ptr.size()});
    EXPECT_GE(stats.empty_row_fraction, 0.95);
    EXPECT_EQ(choose_format(stats), StorageFormat::kBitmapCsr);
}

TEST(GrbTunerTest, ModerateSkewKeepsCsr)
{
    // Uniform-random degrees in [1, 32]: cv ~ 0.56 — too varied for
    // sell's padding bound, no empty rows and not skewed enough for
    // the bitmap.
    Rng rng(0xC5);
    std::vector<uint64_t> degrees(512);
    for (auto& d : degrees) {
        d = 1 + rng.next_bounded(32);
    }
    const auto row_ptr = row_ptr_of(degrees);
    const auto stats =
        graph::compute_degree_stats({row_ptr.data(), row_ptr.size()});
    EXPECT_EQ(stats.empty_rows, 0u);
    EXPECT_GT(stats.degree_cv, 0.5);
    EXPECT_LT(stats.degree_cv, 2.0);
    EXPECT_EQ(choose_format(stats), StorageFormat::kCsr);
}

TEST(GrbTunerTest, EnvOverrideForcesFormatAndCounts)
{
    metrics::Interval interval;
    {
        EnvGuard forced("GAS_FORMAT", "sell");
        // A mostly-empty matrix the tuner would give the bitmap.
        std::vector<std::tuple<Index, Index, uint32_t>> tuples;
        tuples.emplace_back(0, 1, 1u);
        const auto A =
            Matrix<uint32_t>::from_tuples(200, 200, std::move(tuples));
        EXPECT_EQ(A.storage_format(), StorageFormat::kSell);
        EXPECT_TRUE(A.format_tuning().forced);
    }
    EXPECT_GE(interval.delta()[metrics::kFormatSellSelected], 1u);

    // Unrecognized values fall back to the tuner's own decision.
    {
        EnvGuard junk("GAS_FORMAT", "wat");
        EXPECT_EQ(storage_format_from_env(), std::nullopt);
        std::vector<std::tuple<Index, Index, uint32_t>> tuples;
        tuples.emplace_back(0, 1, 1u);
        const auto A =
            Matrix<uint32_t>::from_tuples(200, 200, std::move(tuples));
        EXPECT_EQ(A.storage_format(), StorageFormat::kBitmapCsr);
        EXPECT_FALSE(A.format_tuning().forced);
    }
}

TEST(GrbTunerTest, TuningSurvivesCopyAndInvalidatesOnMutation)
{
    const auto A = random_matrix<uint32_t>(32, 32, 0.5, 0xC0);
    Matrix<uint32_t> forced = A;
    forced.set_storage_format(StorageFormat::kBitmapCsr);

    // Copies carry the decision but rebuild structures lazily.
    Matrix<uint32_t> copy = forced;
    EXPECT_EQ(copy.storage_format(), StorageFormat::kBitmapCsr);

    // Mutable raw access drops the decision; the next query re-tunes
    // (honoring a process-wide GAS_FORMAT if the environment sets one,
    // as in the CI format matrix).
    copy.raw_vals();
    if (const auto env = storage_format_from_env()) {
        EXPECT_EQ(copy.storage_format(), *env);
        EXPECT_TRUE(copy.format_tuning().forced);
    } else {
        EXPECT_FALSE(copy.format_tuning().forced);
    }
}

} // namespace
} // namespace gas::grb
