/**
 * @file
 * Degenerate and adversarial inputs across the whole stack: empty
 * graphs, single vertices, isolated vertices, self-loops, disconnected
 * sources, extreme weights, and tiny dimensions — the inputs most
 * likely to expose off-by-one or empty-range bugs.
 */

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "lagraph/lagraph.h"
#include "lonestar/lonestar.h"
#include "runtime/thread_pool.h"
#include "verify/reference.h"

namespace gas {
namespace {

using graph::Edge;
using graph::EdgeList;
using graph::Graph;
using graph::Node;

class EdgeCasesTest : public ::testing::Test
{
  protected:
    void SetUp() override { rt::set_num_threads(4); }
};

TEST_F(EdgeCasesTest, SingleVertexEverything)
{
    EdgeList list;
    list.num_nodes = 1;
    Graph g = Graph::from_edge_list(list, true);

    EXPECT_EQ(ls::bfs(g, 0), (std::vector<uint32_t>{0}));
    EXPECT_EQ(ls::cc_afforest(g), (std::vector<Node>{0}));
    EXPECT_EQ(ls::cc_sv(g), (std::vector<Node>{0}));
    EXPECT_EQ(ls::sssp(g, 0), (std::vector<uint64_t>{0}));
    EXPECT_EQ(ls::ktruss(g, 3), 0u);
    EXPECT_EQ(ls::tc(ls::build_forward_graph(g)), 0u);

    const auto A8 = grb::Matrix<uint8_t>::from_graph(g, false);
    EXPECT_EQ(la::bfs_levels_from(la::bfs(A8, 0)),
              (std::vector<uint32_t>{0}));
    const auto A32 = grb::Matrix<uint32_t>::from_graph(g, false);
    EXPECT_EQ(la::cc_fastsv(A32), (std::vector<Node>{0}));
    const auto A64 = grb::Matrix<uint64_t>::from_graph(g, true);
    EXPECT_EQ(la::sssp_delta(A64, 0, 16), (std::vector<uint64_t>{0}));
    EXPECT_EQ(la::tc_sandia(grb::Matrix<uint64_t>::from_graph(g, false)),
              0u);
}

TEST_F(EdgeCasesTest, EdgelessGraph)
{
    EdgeList list;
    list.num_nodes = 10;
    Graph g = Graph::from_edge_list(list, true);

    const auto bfs = ls::bfs(g, 3);
    EXPECT_EQ(bfs[3], 0u);
    for (Node v = 0; v < 10; ++v) {
        if (v != 3) {
            EXPECT_EQ(bfs[v], ls::kUnreachedLevel);
        }
    }
    // Ten singleton components.
    const auto components = ls::cc_afforest(g);
    for (Node v = 0; v < 10; ++v) {
        EXPECT_EQ(components[v], v);
    }
    const auto A = grb::Matrix<uint32_t>::from_graph(g, false);
    EXPECT_EQ(la::cc_fastsv(A), components);
    EXPECT_EQ(la::cc_sv(A), components);
}

TEST_F(EdgeCasesTest, SourceInTinyComponent)
{
    // Source isolated from the big component: most vertices unreached.
    EdgeList list = graph::karate_club();
    list.num_nodes = 36;
    list.edges.push_back({34, 35, 5});
    list.edges.push_back({35, 34, 5});
    Graph g = Graph::from_edge_list(list, true);
    g.sort_adjacencies();

    const auto levels = ls::bfs(g, 34);
    EXPECT_EQ(levels[34], 0u);
    EXPECT_EQ(levels[35], 1u);
    EXPECT_EQ(levels[0], ls::kUnreachedLevel);
    EXPECT_EQ(levels, verify::bfs_levels(g, 34));

    const auto dist = ls::sssp(g, 34);
    EXPECT_EQ(dist[35], 5u);
    EXPECT_EQ(dist[0], ls::kInfDistance);
    const auto A = grb::Matrix<uint64_t>::from_graph(g, true);
    EXPECT_EQ(la::sssp_delta(A, 34, 16), dist);
}

TEST_F(EdgeCasesTest, SelfLoopsDoNotBreakTraversals)
{
    EdgeList list = graph::karate_club();
    list.edges.push_back({0, 0, 9});
    list.edges.push_back({17, 17, 9});
    Graph g = Graph::from_edge_list(list, true);
    g.sort_adjacencies();

    EXPECT_EQ(ls::bfs(g, 0), verify::bfs_levels(g, 0));
    EXPECT_EQ(ls::sssp(g, 0), verify::dijkstra(g, 0));
    EXPECT_EQ(ls::cc_afforest(g), verify::connected_components(g));
    const auto A = grb::Matrix<uint8_t>::from_graph(g, false);
    EXPECT_EQ(la::bfs_levels_from(la::bfs(A, 0)),
              verify::bfs_levels(g, 0));
}

TEST_F(EdgeCasesTest, MaxWeightEdgesDoNotOverflow)
{
    // Long chain of maximum 32-bit weights: distances exceed 2^32 and
    // must not wrap in any system.
    constexpr Node kChain = 40;
    EdgeList list;
    list.num_nodes = kChain;
    for (Node v = 0; v + 1 < kChain; ++v) {
        list.edges.push_back({v, v + 1, ~graph::Weight{0}});
        list.edges.push_back({v + 1, v, ~graph::Weight{0}});
    }
    Graph g = Graph::from_edge_list(list, true);
    g.sort_adjacencies();

    const auto oracle = verify::dijkstra(g, 0);
    EXPECT_GT(oracle[kChain - 1], uint64_t{1} << 32);
    EXPECT_EQ(ls::sssp(g, 0), oracle);
    const auto A = grb::Matrix<uint64_t>::from_graph(g, true);
    EXPECT_EQ(la::sssp_delta(A, 0, uint64_t{1} << 33), oracle);
}

TEST_F(EdgeCasesTest, TwoVertexGraph)
{
    EdgeList list;
    list.num_nodes = 2;
    list.edges = {{0, 1, 3}, {1, 0, 3}};
    Graph g = Graph::from_edge_list(list, true);
    g.sort_adjacencies();

    EXPECT_EQ(ls::bfs(g, 0), (std::vector<uint32_t>{0, 1}));
    EXPECT_EQ(ls::sssp(g, 1), (std::vector<uint64_t>{3, 0}));
    EXPECT_EQ(ls::tc(ls::build_forward_graph(g)), 0u);
    EXPECT_EQ(ls::ktruss(g, 3), 0u);
    const auto A = grb::Matrix<uint64_t>::from_graph(g, false);
    EXPECT_EQ(la::ktruss(A, 3), 0u);
    EXPECT_EQ(la::tc_sandia(A), 0u);
}

TEST_F(EdgeCasesTest, PagerankOnSinkOnlyGraph)
{
    // All edges point into vertex 0, which has no out-edges: rank mass
    // drains but nothing divides by zero.
    EdgeList list;
    list.num_nodes = 6;
    for (Node v = 1; v < 6; ++v) {
        list.edges.push_back({v, 0, 1});
    }
    Graph g = Graph::from_edge_list(list, false);
    const auto transpose = graph::transpose(g);
    const auto expected = verify::pagerank(g, 0.85, 10);
    const auto ls_ranks = ls::pagerank(g, transpose, 0.85, 10);
    const auto A = grb::Matrix<double>::from_graph(g, false);
    const auto gb_ranks = la::pagerank(A, A.transpose(), 0.85, 10);
    for (Node v = 0; v < 6; ++v) {
        EXPECT_NEAR(ls_ranks[v], expected[v], 1e-12);
        EXPECT_NEAR(gb_ranks[v], expected[v], 1e-12);
    }
}

TEST_F(EdgeCasesTest, KtrussKEqualsThreeKeepsAllTriangles)
{
    EdgeList list = graph::complete(4);
    Graph g = Graph::from_edge_list(list, false);
    g.sort_adjacencies();
    EXPECT_EQ(ls::ktruss(g, 3), 6u);
    const auto A = grb::Matrix<uint64_t>::from_graph(g, false);
    EXPECT_EQ(la::ktruss(A, 3), 6u);
}

TEST_F(EdgeCasesTest, SsspDeltaOneDegeneratesToDijkstraOrder)
{
    EdgeList list = graph::grid2d(9, 9, 4);
    graph::randomize_weights(list, 12, 1, 7);
    Graph g = Graph::from_edge_list(list, true);
    g.sort_adjacencies();
    ls::SsspOptions options;
    options.delta = 1;
    EXPECT_EQ(ls::sssp(g, 0, options), verify::dijkstra(g, 0));
    const auto A = grb::Matrix<uint64_t>::from_graph(g, true);
    EXPECT_EQ(la::sssp_delta(A, 0, 1), verify::dijkstra(g, 0));
}

TEST_F(EdgeCasesTest, HugeDeltaDegeneratesToBellmanFord)
{
    EdgeList list = graph::grid2d(9, 9, 4);
    graph::randomize_weights(list, 12, 1, 7);
    Graph g = Graph::from_edge_list(list, true);
    g.sort_adjacencies();
    ls::SsspOptions options;
    options.delta = ~uint64_t{0} / 2;
    EXPECT_EQ(ls::sssp(g, 0, options), verify::dijkstra(g, 0));
}

TEST_F(EdgeCasesTest, GrbOpsOnZeroLengthVectors)
{
    grb::Vector<int64_t> empty(0);
    EXPECT_EQ((grb::reduce<grb::PlusMonoid<int64_t>>(empty)), 0);
    grb::Vector<int64_t> w;
    grb::apply(w, empty, [](int64_t x) { return x; });
    EXPECT_EQ(w.size(), 0u);
    grb::select_entries(w, empty, [](grb::Index, int64_t) {
        return true;
    });
    EXPECT_EQ(w.nvals(), 0u);
}

TEST_F(EdgeCasesTest, SingleThreadedRuntimeHandlesEverything)
{
    rt::set_num_threads(1);
    EdgeList list = graph::rmat(8, 8, 2);
    graph::symmetrize(list);
    graph::randomize_weights(list, 3, 1, 50);
    Graph g = Graph::from_edge_list(list, true);
    g.sort_adjacencies();
    const Node source = graph::highest_degree_node(g);
    EXPECT_EQ(ls::bfs(g, source), verify::bfs_levels(g, source));
    EXPECT_EQ(ls::sssp(g, source), verify::dijkstra(g, source));
    EXPECT_EQ(ls::cc_afforest(g), verify::connected_components(g));
    rt::set_num_threads(4);
}

} // namespace
} // namespace gas
