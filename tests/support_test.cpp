/**
 * @file
 * Unit tests for the support module: RNG, timers, formatting, memory
 * tracking, and the tracked vector.
 */

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "support/env.h"
#include "support/format.h"
#include "support/memory_tracker.h"
#include "support/random.h"
#include "support/status.h"
#include "support/timer.h"
#include "support/tracked_vector.h"

namespace gas {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int differing = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() != b.next()) {
            ++differing;
        }
    }
    EXPECT_GT(differing, 90);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.next_bounded(17), 17u);
    }
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(9);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        seen.insert(rng.next_bounded(8));
    }
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.next_double();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, DoubleIsRoughlyUniform)
{
    Rng rng(5);
    double sum = 0.0;
    const int samples = 100000;
    for (int i = 0; i < samples; ++i) {
        sum += rng.next_double();
    }
    EXPECT_NEAR(sum / samples, 0.5, 0.01);
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const uint32_t v = rng.next_in_range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Timer, AccumulatesAcrossStartStop)
{
    Timer timer;
    timer.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    timer.stop();
    const double first = timer.seconds();
    EXPECT_GE(first, 0.009);
    timer.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    timer.stop();
    EXPECT_GE(timer.seconds(), first + 0.009);
}

TEST(Timer, ResetClears)
{
    Timer timer;
    timer.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    timer.stop();
    timer.reset();
    EXPECT_EQ(timer.seconds(), 0.0);
}

TEST(ScopedTimer, MeasuresScope)
{
    double seconds = 0.0;
    {
        ScopedTimer scope(seconds);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GE(seconds, 0.009);
}

TEST(Format, HumanBytes)
{
    EXPECT_EQ(human_bytes(512), "512 B");
    EXPECT_EQ(human_bytes(2048), "2.00 KB");
    EXPECT_EQ(human_bytes(3 * 1024 * 1024), "3.00 MB");
}

TEST(Format, HumanCount)
{
    EXPECT_EQ(human_count(0), "0");
    EXPECT_EQ(human_count(999), "999");
    EXPECT_EQ(human_count(1000), "1,000");
    EXPECT_EQ(human_count(1468364884), "1,468,364,884");
}

TEST(Format, Fixed)
{
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fixed(1.0, 0), "1");
}

TEST(MemoryTracker, TracksAllocAndFree)
{
    const std::size_t before = memory::current_bytes();
    memory::note_alloc(1000);
    EXPECT_EQ(memory::current_bytes(), before + 1000);
    memory::note_free(1000);
    EXPECT_EQ(memory::current_bytes(), before);
}

TEST(MemoryTracker, PeakScopeSeesGrowth)
{
    memory::PeakScope scope;
    memory::note_alloc(4096);
    memory::note_free(4096);
    EXPECT_GE(scope.peak_above_baseline(), 4096u);
}

TEST(TrackedVector, AccountsCapacity)
{
    const std::size_t before = memory::current_bytes();
    {
        TrackedVector<uint64_t> values;
        values.resize(1024);
        EXPECT_GE(memory::current_bytes(), before + 1024 * sizeof(uint64_t));
    }
    EXPECT_EQ(memory::current_bytes(), before);
}

TEST(TrackedVector, MoveTransfersAccounting)
{
    const std::size_t before = memory::current_bytes();
    TrackedVector<int> a(100);
    TrackedVector<int> b(std::move(a));
    EXPECT_EQ(b.size(), 100u);
    b.reset();
    EXPECT_EQ(memory::current_bytes(), before);
}

TEST(Status, OkByDefault)
{
    const Status status = Status::Ok();
    EXPECT_TRUE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kOk);
    EXPECT_EQ(status.to_string(), "ok");
}

TEST(Status, CarriesCodeAndMessage)
{
    const Status status = Status::DeadlineExceeded("pr took too long");
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(status.message(), "pr took too long");
    EXPECT_EQ(status.to_string(),
              "deadline_exceeded: pr took too long");
}

TEST(Status, ComparesByCode)
{
    EXPECT_EQ(Status::Cancelled("a"), Status::Cancelled("b"));
    EXPECT_NE(Status::Cancelled("a"), Status::Internal("a"));
}

TEST(StatusOr, HoldsValue)
{
    StatusOr<int> result = 42;
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value(), 42);
}

TEST(StatusOr, HoldsError)
{
    StatusOr<int> result = Status::InvalidArgument("bad column");
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

class EnvVar
{
  public:
    explicit EnvVar(const char* name, const char* value) : name_(name)
    {
        setenv(name, value, 1);
    }
    ~EnvVar() { unsetenv(name_); }

  private:
    const char* name_;
};

TEST(Env, GetReturnsNulloptWhenUnsetOrEmpty)
{
    unsetenv("GAS_TEST_ENV");
    EXPECT_FALSE(env::get("GAS_TEST_ENV").has_value());
    EnvVar var("GAS_TEST_ENV", "");
    EXPECT_FALSE(env::get("GAS_TEST_ENV").has_value());
}

TEST(Env, GetReturnsValue)
{
    EnvVar var("GAS_TEST_ENV", "csr");
    ASSERT_TRUE(env::get("GAS_TEST_ENV").has_value());
    EXPECT_EQ(*env::get("GAS_TEST_ENV"), "csr");
}

TEST(Env, FlagSemantics)
{
    unsetenv("GAS_TEST_ENV");
    EXPECT_FALSE(env::flag("GAS_TEST_ENV"));
    {
        EnvVar var("GAS_TEST_ENV", "0");
        EXPECT_FALSE(env::flag("GAS_TEST_ENV"));
    }
    {
        EnvVar var("GAS_TEST_ENV", "off");
        EXPECT_FALSE(env::flag("GAS_TEST_ENV"));
    }
    {
        EnvVar var("GAS_TEST_ENV", "1");
        EXPECT_TRUE(env::flag("GAS_TEST_ENV"));
    }
}

TEST(Env, U64OrParsesAndFallsBack)
{
    unsetenv("GAS_TEST_ENV");
    EXPECT_EQ(env::u64_or("GAS_TEST_ENV", 7), 7u);
    {
        EnvVar var("GAS_TEST_ENV", "123");
        EXPECT_EQ(env::u64_or("GAS_TEST_ENV", 7), 123u);
    }
    {
        EnvVar var("GAS_TEST_ENV", "12abc");
        EXPECT_EQ(env::u64_or("GAS_TEST_ENV", 7), 7u);
    }
}

TEST(Env, F64OrParsesAndFallsBack)
{
    unsetenv("GAS_TEST_ENV");
    EXPECT_EQ(env::f64_or("GAS_TEST_ENV", 1.5), 1.5);
    {
        EnvVar var("GAS_TEST_ENV", "0.25");
        EXPECT_EQ(env::f64_or("GAS_TEST_ENV", 1.5), 0.25);
    }
    {
        EnvVar var("GAS_TEST_ENV", "not-a-number");
        EXPECT_EQ(env::f64_or("GAS_TEST_ENV", 1.5), 1.5);
    }
}

TEST(Env, ParseSpecSplitsClauses)
{
    const auto parsed = env::parse_spec("alloc:0.01,delay:50,seed:7");
    ASSERT_TRUE(parsed.ok());
    const auto& entries = parsed.value();
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].key, "alloc");
    EXPECT_EQ(entries[0].value, "0.01");
    EXPECT_EQ(entries[1].key, "delay");
    EXPECT_EQ(entries[1].value, "50");
    EXPECT_EQ(entries[2].key, "seed");
    EXPECT_EQ(entries[2].value, "7");
}

TEST(Env, ParseSpecRejectsMalformedClauses)
{
    EXPECT_FALSE(env::parse_spec("alloc").ok());
    EXPECT_FALSE(env::parse_spec(":0.5").ok());
    EXPECT_FALSE(env::parse_spec("alloc:").ok());
    EXPECT_EQ(env::parse_spec("alloc").status().code(),
              StatusCode::kInvalidArgument);
}

TEST(TrackedVector, BehavesLikeVector)
{
    TrackedVector<int> values;
    for (int i = 0; i < 100; ++i) {
        values.push_back(i);
    }
    EXPECT_EQ(values.size(), 100u);
    EXPECT_EQ(values.front(), 0);
    EXPECT_EQ(values.back(), 99);
    int sum = 0;
    for (const int v : values) {
        sum += v;
    }
    EXPECT_EQ(sum, 4950);
}

} // namespace
} // namespace gas
