/**
 * @file
 * Unit tests for the support module: RNG, timers, formatting, memory
 * tracking, and the tracked vector.
 */

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "support/format.h"
#include "support/memory_tracker.h"
#include "support/random.h"
#include "support/timer.h"
#include "support/tracked_vector.h"

namespace gas {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int differing = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() != b.next()) {
            ++differing;
        }
    }
    EXPECT_GT(differing, 90);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.next_bounded(17), 17u);
    }
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(9);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        seen.insert(rng.next_bounded(8));
    }
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.next_double();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, DoubleIsRoughlyUniform)
{
    Rng rng(5);
    double sum = 0.0;
    const int samples = 100000;
    for (int i = 0; i < samples; ++i) {
        sum += rng.next_double();
    }
    EXPECT_NEAR(sum / samples, 0.5, 0.01);
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const uint32_t v = rng.next_in_range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Timer, AccumulatesAcrossStartStop)
{
    Timer timer;
    timer.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    timer.stop();
    const double first = timer.seconds();
    EXPECT_GE(first, 0.009);
    timer.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    timer.stop();
    EXPECT_GE(timer.seconds(), first + 0.009);
}

TEST(Timer, ResetClears)
{
    Timer timer;
    timer.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    timer.stop();
    timer.reset();
    EXPECT_EQ(timer.seconds(), 0.0);
}

TEST(ScopedTimer, MeasuresScope)
{
    double seconds = 0.0;
    {
        ScopedTimer scope(seconds);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GE(seconds, 0.009);
}

TEST(Format, HumanBytes)
{
    EXPECT_EQ(human_bytes(512), "512 B");
    EXPECT_EQ(human_bytes(2048), "2.00 KB");
    EXPECT_EQ(human_bytes(3 * 1024 * 1024), "3.00 MB");
}

TEST(Format, HumanCount)
{
    EXPECT_EQ(human_count(0), "0");
    EXPECT_EQ(human_count(999), "999");
    EXPECT_EQ(human_count(1000), "1,000");
    EXPECT_EQ(human_count(1468364884), "1,468,364,884");
}

TEST(Format, Fixed)
{
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fixed(1.0, 0), "1");
}

TEST(MemoryTracker, TracksAllocAndFree)
{
    const std::size_t before = memory::current_bytes();
    memory::note_alloc(1000);
    EXPECT_EQ(memory::current_bytes(), before + 1000);
    memory::note_free(1000);
    EXPECT_EQ(memory::current_bytes(), before);
}

TEST(MemoryTracker, PeakScopeSeesGrowth)
{
    memory::PeakScope scope;
    memory::note_alloc(4096);
    memory::note_free(4096);
    EXPECT_GE(scope.peak_above_baseline(), 4096u);
}

TEST(TrackedVector, AccountsCapacity)
{
    const std::size_t before = memory::current_bytes();
    {
        TrackedVector<uint64_t> values;
        values.resize(1024);
        EXPECT_GE(memory::current_bytes(), before + 1024 * sizeof(uint64_t));
    }
    EXPECT_EQ(memory::current_bytes(), before);
}

TEST(TrackedVector, MoveTransfersAccounting)
{
    const std::size_t before = memory::current_bytes();
    TrackedVector<int> a(100);
    TrackedVector<int> b(std::move(a));
    EXPECT_EQ(b.size(), 100u);
    b.reset();
    EXPECT_EQ(memory::current_bytes(), before);
}

TEST(TrackedVector, BehavesLikeVector)
{
    TrackedVector<int> values;
    for (int i = 0; i < 100; ++i) {
        values.push_back(i);
    }
    EXPECT_EQ(values.size(), 100u);
    EXPECT_EQ(values.front(), 0);
    EXPECT_EQ(values.back(), 99);
    int sum = 0;
    for (const int v : values) {
        sum += v;
    }
    EXPECT_EQ(sum, 4950);
}

} // namespace
} // namespace gas
