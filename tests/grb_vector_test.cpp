/**
 * @file
 * Unit tests for grb::Vector storage, conversions, and element access.
 */

#include <gtest/gtest.h>

#include "matrix/grb.h"

namespace gas::grb {
namespace {

TEST(GrbVector, EmptyVector)
{
    Vector<int> v(10);
    EXPECT_EQ(v.size(), 10u);
    EXPECT_EQ(v.nvals(), 0u);
    EXPECT_EQ(v.format(), VectorFormat::kSparse);
    EXPECT_FALSE(v.get_element(3).has_value());
}

TEST(GrbVector, SetGetSparse)
{
    Vector<int> v(10);
    v.set_element(3, 42);
    v.set_element(7, -1);
    EXPECT_EQ(v.nvals(), 2u);
    EXPECT_EQ(v.get_element(3), 42);
    EXPECT_EQ(v.get_element(7), -1);
    EXPECT_FALSE(v.get_element(0).has_value());
    v.set_element(3, 99);
    EXPECT_EQ(v.nvals(), 2u);
    EXPECT_EQ(v.get_element(3), 99);
}

TEST(GrbVector, SetOutOfOrderMarksUnsorted)
{
    Vector<int> v(10);
    v.set_element(7, 1);
    v.set_element(3, 2);
    EXPECT_FALSE(v.sorted());
    v.sort_entries();
    EXPECT_TRUE(v.sorted());
    EXPECT_EQ(v.get_element(3), 2);
    EXPECT_EQ(v.get_element(7), 1);
}

TEST(GrbVector, SortedTailAppendStaysSorted)
{
    // Monotone inserts take the O(1) tail-append fast path and must
    // keep the vector sorted so lookups use the binary search.
    Vector<int> v(1000);
    for (Index i = 0; i < 1000; i += 3) {
        v.set_element(i, static_cast<int>(i) + 1);
    }
    EXPECT_TRUE(v.sorted());
    EXPECT_EQ(v.nvals(), 334u);
    for (Index i = 0; i < 1000; ++i) {
        if (i % 3 == 0) {
            EXPECT_EQ(v.get_element(i), static_cast<int>(i) + 1);
        } else {
            EXPECT_FALSE(v.get_element(i).has_value());
        }
    }
}

TEST(GrbVector, SortedOverwriteUsesBinarySearch)
{
    // Overwriting an existing index in a sorted vector must hit the
    // binary-search branch: nvals unchanged, order preserved.
    Vector<int> v(100);
    for (Index i = 10; i < 100; i += 10) {
        v.set_element(i, 0);
    }
    ASSERT_TRUE(v.sorted());
    v.set_element(50, 5);
    v.set_element(10, 1);
    v.set_element(90, 9);
    EXPECT_TRUE(v.sorted());
    EXPECT_EQ(v.nvals(), 9u);
    EXPECT_EQ(v.get_element(10), 1);
    EXPECT_EQ(v.get_element(50), 5);
    EXPECT_EQ(v.get_element(90), 9);
    EXPECT_EQ(v.get_element(20), 0);
}

TEST(GrbVector, UnsortedInsertThenSortRestoresLookups)
{
    // A new (not overwriting) out-of-order index appends and drops the
    // sorted flag; lookups fall back to the linear scan and keep
    // working, and sort_entries restores the invariant.
    Vector<int> v(100);
    v.set_element(40, 4);
    v.set_element(80, 8);
    ASSERT_TRUE(v.sorted());
    v.set_element(20, 2);
    EXPECT_FALSE(v.sorted());
    EXPECT_EQ(v.nvals(), 3u);
    EXPECT_EQ(v.get_element(20), 2);
    EXPECT_EQ(v.get_element(40), 4);
    // Overwrites while unsorted still find the entry.
    v.set_element(80, 88);
    EXPECT_EQ(v.nvals(), 3u);
    v.sort_entries();
    EXPECT_TRUE(v.sorted());
    EXPECT_EQ(v.get_element(80), 88);
    const auto tuples = v.extract_tuples();
    ASSERT_EQ(tuples.size(), 3u);
    EXPECT_EQ(tuples[0], (std::pair<Index, int>{20, 2}));
    EXPECT_EQ(tuples[2], (std::pair<Index, int>{80, 88}));
}

TEST(GrbVector, Fill)
{
    Vector<int> v(5);
    v.fill(9);
    EXPECT_EQ(v.format(), VectorFormat::kDense);
    EXPECT_EQ(v.nvals(), 5u);
    for (Index i = 0; i < 5; ++i) {
        EXPECT_EQ(v.get_element(i), 9);
    }
}

TEST(GrbVector, DensifyPreservesEntries)
{
    Vector<int> v(8);
    v.set_element(1, 10);
    v.set_element(6, 60);
    v.densify();
    EXPECT_EQ(v.format(), VectorFormat::kDense);
    EXPECT_EQ(v.nvals(), 2u);
    EXPECT_EQ(v.get_element(1), 10);
    EXPECT_EQ(v.get_element(6), 60);
    EXPECT_FALSE(v.get_element(0).has_value());
}

TEST(GrbVector, SparsifyPreservesEntries)
{
    Vector<int> v(8);
    v.fill(0);
    v.set_element(2, 5);
    v.sparsify();
    EXPECT_EQ(v.format(), VectorFormat::kSparse);
    EXPECT_EQ(v.nvals(), 8u);
    EXPECT_EQ(v.get_element(2), 5);
    EXPECT_EQ(v.get_element(3), 0);
    EXPECT_TRUE(v.sorted());
}

TEST(GrbVector, RoundTripDenseSparseDense)
{
    Vector<uint32_t> v(100);
    for (Index i = 0; i < 100; i += 7) {
        v.set_element(i, i * 2);
    }
    const auto before = v.extract_tuples();
    v.densify();
    v.sparsify();
    v.densify();
    EXPECT_EQ(v.extract_tuples(), before);
}

TEST(GrbVector, MaskTrueSemantics)
{
    Vector<int> v(5);
    v.set_element(0, 1);
    v.set_element(1, 0); // explicit zero is mask-false
    EXPECT_TRUE(v.mask_true(0));
    EXPECT_FALSE(v.mask_true(1));
    EXPECT_FALSE(v.mask_true(2)); // implicit is mask-false
    v.densify();
    EXPECT_TRUE(v.mask_true(0));
    EXPECT_FALSE(v.mask_true(1));
    EXPECT_FALSE(v.mask_true(2));
}

TEST(GrbVector, ClearResets)
{
    Vector<int> v(5);
    v.fill(3);
    v.clear();
    EXPECT_EQ(v.nvals(), 0u);
    EXPECT_EQ(v.size(), 5u);
    EXPECT_EQ(v.format(), VectorFormat::kSparse);
}

TEST(GrbVector, BuildFromArrays)
{
    TrackedVector<Index> idx{5, 1, 3};
    TrackedVector<int> vals{50, 10, 30};
    Vector<int> v(6);
    v.build(std::move(idx), std::move(vals), /*indices_sorted=*/false);
    EXPECT_EQ(v.nvals(), 3u);
    EXPECT_FALSE(v.sorted());
    EXPECT_EQ(v.get_element(5), 50);
    EXPECT_EQ(v.get_element(1), 10);
    const auto tuples = v.extract_tuples();
    ASSERT_EQ(tuples.size(), 3u);
    EXPECT_EQ(tuples[0], (std::pair<Index, int>{1, 10}));
    EXPECT_EQ(tuples[1], (std::pair<Index, int>{3, 30}));
    EXPECT_EQ(tuples[2], (std::pair<Index, int>{5, 50}));
}

TEST(GrbVector, ForEntriesVisitsAll)
{
    Vector<int> v(10);
    v.set_element(2, 20);
    v.set_element(8, 80);
    int sum = 0;
    v.for_entries([&](Index, int value) { sum += value; });
    EXPECT_EQ(sum, 100);
}

TEST(GrbMatrix, FromTuplesAndAccess)
{
    auto m = Matrix<int>::from_tuples(
        3, 4, {{0, 1, 5}, {2, 3, 7}, {0, 0, 1}, {2, 0, 2}});
    EXPECT_EQ(m.nrows(), 3u);
    EXPECT_EQ(m.ncols(), 4u);
    EXPECT_EQ(m.nvals(), 4u);
    EXPECT_EQ(m.get_element(0, 1), 5);
    EXPECT_EQ(m.get_element(2, 3), 7);
    EXPECT_FALSE(m.get_element(1, 1).has_value());
    // Rows are sorted by column.
    const auto row0 = m.row_indices(0);
    EXPECT_EQ(row0[0], 0u);
    EXPECT_EQ(row0[1], 1u);
}

TEST(GrbMatrix, Transpose)
{
    auto m = Matrix<int>::from_tuples(2, 3, {{0, 2, 9}, {1, 0, 4}});
    const auto t = m.transpose();
    EXPECT_EQ(t.nrows(), 3u);
    EXPECT_EQ(t.ncols(), 2u);
    EXPECT_EQ(t.get_element(2, 0), 9);
    EXPECT_EQ(t.get_element(0, 1), 4);
    EXPECT_EQ(t.nvals(), 2u);
}

TEST(GrbMatrix, TransposeTwiceIsIdentity)
{
    auto m = Matrix<int>::from_tuples(
        4, 4, {{0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {3, 0, 4}, {1, 0, 5}});
    const auto tt = m.transpose().transpose();
    EXPECT_EQ(tt.extract_tuples(), m.extract_tuples());
}

TEST(GrbMatrix, FromGraph)
{
    graph::EdgeList list;
    list.num_nodes = 3;
    list.edges = {{0, 1, 7}, {1, 2, 3}};
    const auto g = graph::Graph::from_edge_list(list, true);
    const auto weighted = Matrix<uint64_t>::from_graph(g, true);
    EXPECT_EQ(weighted.get_element(0, 1), 7u);
    const auto pattern = Matrix<uint64_t>::from_graph(g, false);
    EXPECT_EQ(pattern.get_element(0, 1), 1u);
}

} // namespace
} // namespace gas::grb
