/**
 * @file
 * End-to-end tests for the Lonestar-style algorithms against the serial
 * oracles, across graph fixtures and thread counts.
 */

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "lonestar/lonestar.h"
#include "runtime/thread_pool.h"
#include "verify/reference.h"

namespace gas {
namespace {

using graph::EdgeList;
using graph::Graph;
using graph::Node;

struct Fixture
{
    std::string name;
    EdgeList list;
};

std::vector<Fixture>
fixtures()
{
    std::vector<Fixture> out;
    auto add = [&out](std::string name, EdgeList list) {
        graph::remove_self_loops(list);
        graph::symmetrize(list);
        graph::randomize_weights(list, 4242, 1, 64);
        out.push_back({std::move(name), std::move(list)});
    };
    add("karate", graph::karate_club());
    add("path64", graph::path(64));
    add("grid12x9", graph::grid2d(12, 9, 5, 0.0));
    add("rmat9", graph::rmat(9, 8, 17));
    add("star41", graph::star(41));
    add("er400", graph::erdos_renyi(400, 2400, 23));
    return out;
}

struct Case
{
    Fixture fixture;
    unsigned threads;
};

std::vector<Case>
cases()
{
    std::vector<Case> out;
    for (const auto& fixture : fixtures()) {
        out.push_back({fixture, 1});
        out.push_back({fixture, 4});
    }
    return out;
}

class LonestarTest : public ::testing::TestWithParam<Case>
{
  protected:
    void SetUp() override
    {
        rt::set_num_threads(GetParam().threads);
        graph_ = Graph::from_edge_list(GetParam().fixture.list, true);
        graph_.sort_adjacencies();
    }

    void TearDown() override { rt::set_num_threads(4); }

    Graph graph_;
};

TEST_P(LonestarTest, BfsMatchesOracle)
{
    const Node source = graph::highest_degree_node(graph_);
    EXPECT_EQ(ls::bfs(graph_, source),
              verify::bfs_levels(graph_, source));
}

TEST_P(LonestarTest, BfsFromEveryTenthSource)
{
    for (Node source = 0; source < graph_.num_nodes(); source += 10) {
        ASSERT_EQ(ls::bfs(graph_, source),
                  verify::bfs_levels(graph_, source))
            << "source " << source;
    }
}

TEST_P(LonestarTest, DirectionOptimizingBfsMatchesOracle)
{
    const auto transpose = graph::transpose(graph_);
    for (graph::Node source = 0; source < graph_.num_nodes();
         source += 17) {
        ASSERT_EQ(ls::bfs_dirop(graph_, transpose, source),
                  verify::bfs_levels(graph_, source))
            << "source " << source;
    }
}

TEST_P(LonestarTest, DirectionOptimizingBfsExtremeHeuristics)
{
    const auto transpose = graph::transpose(graph_);
    const graph::Node source = graph::highest_degree_node(graph_);
    const auto expected = verify::bfs_levels(graph_, source);
    // alpha so large it always pulls after round one; beta so large it
    // never switches back.
    EXPECT_EQ(ls::bfs_dirop(graph_, transpose, source, 1u << 30, 1u << 30),
              expected);
    // alpha = 0: never pull (pure top-down).
    EXPECT_EQ(ls::bfs_dirop(graph_, transpose, source, 0, 1), expected);
}

TEST_P(LonestarTest, AfforestMatchesUnionFind)
{
    EXPECT_EQ(ls::cc_afforest(graph_),
              verify::connected_components(graph_));
}

TEST_P(LonestarTest, AfforestWithVariedSamplingRounds)
{
    for (const uint32_t rounds : {0u, 1u, 3u, 8u}) {
        ASSERT_EQ(ls::cc_afforest(graph_, rounds),
                  verify::connected_components(graph_))
            << "sampling rounds " << rounds;
    }
}

TEST_P(LonestarTest, ShiloachVishkinMatchesUnionFind)
{
    EXPECT_EQ(ls::cc_sv(graph_), verify::connected_components(graph_));
}

TEST_P(LonestarTest, PagerankMatchesPowerIteration)
{
    const auto transpose = graph::transpose(graph_);
    const auto ranks = ls::pagerank(graph_, transpose, 0.85, 10);
    const auto expected = verify::pagerank(graph_, 0.85, 10);
    ASSERT_EQ(ranks.size(), expected.size());
    for (std::size_t i = 0; i < ranks.size(); ++i) {
        ASSERT_NEAR(ranks[i], expected[i], 1e-9) << "vertex " << i;
    }
}

TEST_P(LonestarTest, PagerankSoaMatchesAos)
{
    const auto transpose = graph::transpose(graph_);
    const auto aos = ls::pagerank(graph_, transpose, 0.85, 10);
    const auto soa = ls::pagerank_soa(graph_, transpose, 0.85, 10);
    ASSERT_EQ(aos.size(), soa.size());
    for (std::size_t i = 0; i < aos.size(); ++i) {
        ASSERT_NEAR(aos[i], soa[i], 1e-12) << "vertex " << i;
    }
}

TEST_P(LonestarTest, SsspMatchesDijkstra)
{
    const Node source = graph::highest_degree_node(graph_);
    const auto expected = verify::dijkstra(graph_, source);
    for (const uint64_t delta : {uint64_t{1}, uint64_t{16}, uint64_t{8192}}) {
        ls::SsspOptions options;
        options.delta = delta;
        ASSERT_EQ(ls::sssp(graph_, source, options), expected)
            << "delta " << delta;
    }
}

TEST_P(LonestarTest, SsspWithoutTilingMatchesDijkstra)
{
    const Node source = graph::highest_degree_node(graph_);
    ls::SsspOptions options;
    options.edge_tile_size = 0;
    EXPECT_EQ(ls::sssp(graph_, source, options),
              verify::dijkstra(graph_, source));
}

TEST_P(LonestarTest, SsspTinyTilesMatchDijkstra)
{
    const Node source = graph::highest_degree_node(graph_);
    ls::SsspOptions options;
    options.edge_tile_size = 2; // stress continuation items
    EXPECT_EQ(ls::sssp(graph_, source, options),
              verify::dijkstra(graph_, source));
}

TEST_P(LonestarTest, TriangleCountMatchesOracle)
{
    const auto forward = ls::build_forward_graph(graph_);
    EXPECT_EQ(ls::tc(forward), verify::count_triangles(graph_));
}

TEST_P(LonestarTest, KtrussMatchesOracle)
{
    for (const uint32_t k : {3u, 4u, 7u}) {
        uint32_t rounds = 0;
        EXPECT_EQ(ls::ktruss(graph_, k, &rounds),
                  verify::ktruss_edge_count(graph_, k))
            << "k=" << k;
        EXPECT_GE(rounds, 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(GraphsAndThreads, LonestarTest,
                         ::testing::ValuesIn(cases()),
                         [](const auto& info) {
                             return info.param.fixture.name + "_t" +
                                 std::to_string(info.param.threads);
                         });

} // namespace
} // namespace gas
