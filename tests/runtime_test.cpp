/**
 * @file
 * Unit tests for the parallel runtime: thread pool, do_all scheduling,
 * per-thread storage, reducers, InsertBag, asynchronous for_each, and
 * the OBIM priority executor.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <set>
#include <thread>

#include "metrics/counters.h"
#include "runtime/chase_lev.h"
#include "runtime/for_each.h"
#include "runtime/insert_bag.h"
#include "runtime/obim.h"
#include "runtime/parallel.h"
#include "runtime/per_thread.h"
#include "runtime/reducers.h"
#include "runtime/thread_pool.h"

namespace gas::rt {
namespace {

class RuntimeTest : public ::testing::TestWithParam<unsigned>
{
  protected:
    void SetUp() override { set_num_threads(GetParam()); }
    void TearDown() override { set_num_threads(4); }
};

TEST_P(RuntimeTest, PoolReportsThreadCount)
{
    EXPECT_EQ(num_threads(), GetParam());
}

TEST_P(RuntimeTest, OnEachRunsOncePerThread)
{
    std::atomic<unsigned> runs{0};
    std::set<unsigned> tids;
    std::mutex lock;
    on_each([&](unsigned tid, unsigned total) {
        EXPECT_EQ(total, GetParam());
        runs.fetch_add(1);
        std::lock_guard guard(lock);
        tids.insert(tid);
    });
    EXPECT_EQ(runs.load(), GetParam());
    EXPECT_EQ(tids.size(), GetParam());
}

TEST_P(RuntimeTest, DoAllCoversEveryIndexExactlyOnce)
{
    const std::size_t n = 100003;
    std::vector<std::atomic<uint8_t>> hits(n);
    do_all(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
    }
}

TEST_P(RuntimeTest, DoAllStaticCoversEveryIndex)
{
    const std::size_t n = 54321;
    std::vector<std::atomic<uint8_t>> hits(n);
    do_all(
        n, [&](std::size_t i) { hits[i].fetch_add(1); },
        {Schedule::kStatic, 0});
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
    }
}

TEST_P(RuntimeTest, DoAllEmptyRange)
{
    std::atomic<bool> ran{false};
    do_all(0, [&](std::size_t) { ran.store(true); });
    EXPECT_FALSE(ran.load());
}

TEST_P(RuntimeTest, DoAllBlockedRangesPartition)
{
    const std::size_t n = 9999;
    std::atomic<std::size_t> total{0};
    do_all_blocked(n, [&](Range range) {
        EXPECT_LE(range.begin, range.end);
        total.fetch_add(range.size());
    });
    EXPECT_EQ(total.load(), n);
}

TEST_P(RuntimeTest, NestedParallelismRunsInline)
{
    std::atomic<std::size_t> total{0};
    do_all(10, [&](std::size_t) {
        // Nested do_all must complete inline without deadlock.
        do_all(10, [&](std::size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 100u);
}

TEST_P(RuntimeTest, AccumulatorSumsAcrossThreads)
{
    Accumulator<uint64_t> sum;
    const std::size_t n = 100000;
    do_all(n, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.reduce(), n * (n - 1) / 2);
}

TEST_P(RuntimeTest, ReduceMaxMin)
{
    ReduceMax<int64_t> max_val;
    ReduceMin<int64_t> min_val;
    do_all(1000, [&](std::size_t i) {
        const auto v = static_cast<int64_t>(i * 7 % 997);
        max_val.update(v);
        min_val.update(v);
    });
    EXPECT_EQ(max_val.reduce(), 996);
    EXPECT_EQ(min_val.reduce(), 0);
}

TEST_P(RuntimeTest, ReduceOr)
{
    ReduceOr any;
    do_all(100, [&](std::size_t i) { any.update(i == 57); });
    EXPECT_TRUE(any.reduce());
    any.reset();
    EXPECT_FALSE(any.reduce());
}

TEST_P(RuntimeTest, PerThreadSlotsAreIndependent)
{
    PerThread<uint64_t> counters(0);
    do_all(10000, [&](std::size_t) { ++counters.local(); });
    EXPECT_EQ(counters.reduce(uint64_t{0},
                              [](uint64_t a, uint64_t b) { return a + b; }),
              10000u);
}

TEST_P(RuntimeTest, InsertBagCollectsAllPushes)
{
    InsertBag<std::size_t> bag;
    const std::size_t n = 50000;
    do_all(n, [&](std::size_t i) { bag.push(i); });
    EXPECT_EQ(bag.size(), n);
    std::vector<std::size_t> items = bag.to_vector();
    std::sort(items.begin(), items.end());
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(items[i], i);
    }
}

TEST_P(RuntimeTest, InsertBagParallelApply)
{
    InsertBag<std::size_t> bag;
    do_all(10000, [&](std::size_t i) { bag.push(i); });
    Accumulator<uint64_t> sum;
    bag.parallel_apply([&](std::size_t item) { sum += item; });
    EXPECT_EQ(sum.reduce(), uint64_t{10000} * 9999 / 2);
}

TEST_P(RuntimeTest, InsertBagClearKeepsReusable)
{
    InsertBag<int> bag;
    bag.push(1);
    bag.clear();
    EXPECT_TRUE(bag.empty());
    bag.push(2);
    EXPECT_EQ(bag.size(), 1u);
}

TEST(ChaseLevDequeTest, OwnerPopsLifoThievesStealFifo)
{
    ChaseLevDeque<int> deque;
    for (int i = 0; i < 10; ++i) {
        deque.push(i);
    }
    EXPECT_EQ(deque.size_hint(), 10u);
    int item = -1;
    ASSERT_TRUE(deque.pop(item));
    EXPECT_EQ(item, 9); // owner end is LIFO
    ASSERT_TRUE(deque.steal(item));
    EXPECT_EQ(item, 0); // thief end is FIFO
    ASSERT_TRUE(deque.steal(item));
    EXPECT_EQ(item, 1);
    for (int expected = 8; expected >= 2; --expected) {
        ASSERT_TRUE(deque.pop(item));
        EXPECT_EQ(item, expected);
    }
    EXPECT_FALSE(deque.pop(item));
    EXPECT_FALSE(deque.steal(item));
    EXPECT_TRUE(deque.looks_empty());
}

TEST(ChaseLevDequeTest, GrowsPastInitialCapacity)
{
    ChaseLevDeque<std::size_t> deque(/*initial_capacity=*/4);
    constexpr std::size_t kItems = 10000;
    for (std::size_t i = 0; i < kItems; ++i) {
        deque.push(i);
    }
    EXPECT_EQ(deque.size_hint(), kItems);
    for (std::size_t i = kItems; i-- > 0;) {
        std::size_t item = 0;
        ASSERT_TRUE(deque.pop(item));
        ASSERT_EQ(item, i);
    }
    std::size_t item = 0;
    EXPECT_FALSE(deque.pop(item));
}

TEST(ChaseLevDequeTest, StealBatchTakesAtMostHalf)
{
    ChaseLevDeque<int> deque;
    for (int i = 0; i < 20; ++i) {
        deque.push(i);
    }
    std::array<int, ChaseLevDeque<int>::kMaxBatch> loot;
    // 20 visible items: a batch steal may take at most 10, oldest first.
    const std::size_t got = deque.steal_batch(loot.data(), loot.size());
    EXPECT_EQ(got, 10u);
    for (std::size_t i = 0; i < got; ++i) {
        EXPECT_EQ(loot[i], static_cast<int>(i));
    }
    EXPECT_EQ(deque.size_hint(), 10u);
    // The request cap also binds: ask for 3 of the remaining 10.
    EXPECT_EQ(deque.steal_batch(loot.data(), 3), 3u);
    EXPECT_EQ(loot[0], 10);
    EXPECT_EQ(deque.size_hint(), 7u);
}

TEST(ChaseLevDequeTest, StealBatchReportsNoContentionWhenUncontended)
{
    ChaseLevDeque<int> deque;
    for (int i = 0; i < 8; ++i) {
        deque.push(i);
    }
    std::array<int, ChaseLevDeque<int>::kMaxBatch> loot;
    bool contended = true;
    // Single-threaded: the batch ends by hitting the half cap, never by
    // a lost CAS, so the contention flag must come back false.
    EXPECT_EQ(deque.steal_batch(loot.data(), loot.size(), &contended), 4u);
    EXPECT_FALSE(contended);
    // Draining an empty deque is emptiness, not contention.
    ChaseLevDeque<int> empty;
    contended = true;
    EXPECT_EQ(empty.steal_batch(loot.data(), loot.size(), &contended), 0u);
    EXPECT_FALSE(contended);
}

TEST(StealThrottleTest, AdaptsDuringSkewedForEach)
{
    // One seed item fans out into a pile of work on a single deque, so
    // every other worker must batch-steal from it. Whatever the timing,
    // a thief either completes full uncontended batches (cap grows) or
    // loses a CAS race (cap shrinks) — the adjustment counters must
    // show the throttle reacting. Retry a few times to be robust
    // against a scheduler that lets the owner drain everything alone.
    set_num_threads(4);
    bool adapted = false;
    for (int attempt = 0; attempt < 10 && !adapted; ++attempt) {
        std::atomic<std::size_t> processed{0};
        const metrics::Interval interval;
        for_each<int>(std::vector<int>{-1},
                      [&](const int& item, UserContext<int>& ctx) {
                          if (item < 0) {
                              for (int i = 0; i < 4000; ++i) {
                                  ctx.push(i);
                              }
                              return;
                          }
                          // Yield between items so the thief threads
                          // get scheduled while the spawner's deque is
                          // still full (this box may have one core).
                          std::this_thread::yield();
                          processed.fetch_add(1);
                      });
        EXPECT_EQ(processed.load(), 4000u);
        const auto delta = interval.delta();
        adapted = delta[metrics::kStealGrows] +
                delta[metrics::kStealShrinks] >
            0;
    }
    set_num_threads(4);
    EXPECT_TRUE(adapted)
        << "steal throttle never adjusted its cap across 10 runs";
}

TEST(StealThrottleTest, GrowsOnStreakShrinksOnContention)
{
    StealThrottle throttle(/*max_cap=*/32, /*initial_cap=*/8);
    EXPECT_EQ(throttle.cap(), 8u);

    // Two consecutive full uncontended batches double the cap.
    EXPECT_EQ(throttle.record(8, false), StealThrottle::Adjust::kNone);
    EXPECT_EQ(throttle.record(8, false), StealThrottle::Adjust::kGrew);
    EXPECT_EQ(throttle.cap(), 16u);

    // A partial batch (victim drained) resets the streak but keeps the
    // cap.
    EXPECT_EQ(throttle.record(5, false), StealThrottle::Adjust::kNone);
    EXPECT_EQ(throttle.record(16, false), StealThrottle::Adjust::kNone);
    EXPECT_EQ(throttle.record(16, false), StealThrottle::Adjust::kGrew);
    EXPECT_EQ(throttle.cap(), 32u);

    // At the ceiling, full batches no longer grow.
    EXPECT_EQ(throttle.record(32, false), StealThrottle::Adjust::kNone);
    EXPECT_EQ(throttle.record(32, false), StealThrottle::Adjust::kNone);
    EXPECT_EQ(throttle.cap(), 32u);

    // Contention halves immediately, repeatedly, down to the floor.
    EXPECT_EQ(throttle.record(3, true), StealThrottle::Adjust::kShrank);
    EXPECT_EQ(throttle.cap(), 16u);
    EXPECT_EQ(throttle.record(0, true), StealThrottle::Adjust::kShrank);
    EXPECT_EQ(throttle.record(0, true), StealThrottle::Adjust::kShrank);
    EXPECT_EQ(throttle.record(0, true), StealThrottle::Adjust::kShrank);
    EXPECT_EQ(throttle.cap(), StealThrottle::kMinCap);
    EXPECT_EQ(throttle.record(0, true), StealThrottle::Adjust::kNone);
    EXPECT_EQ(throttle.cap(), StealThrottle::kMinCap);

    // Recovery: the streak machinery still works after shrinking.
    EXPECT_EQ(throttle.record(2, false), StealThrottle::Adjust::kNone);
    EXPECT_EQ(throttle.record(2, false), StealThrottle::Adjust::kGrew);
    EXPECT_EQ(throttle.cap(), 4u);
}

TEST(ChaseLevDequeTest, InterleavedPushPopKeepsCount)
{
    ChaseLevDeque<int> deque(/*initial_capacity=*/2);
    int popped = 0;
    int item = 0;
    for (int round = 0; round < 1000; ++round) {
        deque.push(round);
        deque.push(round);
        if (deque.pop(item)) {
            ++popped;
        }
    }
    while (deque.pop(item)) {
        ++popped;
    }
    EXPECT_EQ(popped, 2000);
    EXPECT_TRUE(deque.looks_empty());
}

TEST_P(RuntimeTest, ForEachProcessesAllInitialItems)
{
    std::vector<int> initial(1000);
    std::iota(initial.begin(), initial.end(), 0);
    Accumulator<int64_t> sum;
    for_each<int>(initial,
                  [&](int item, UserContext<int>&) { sum += item; });
    EXPECT_EQ(sum.reduce(), 1000 * 999 / 2);
}

TEST_P(RuntimeTest, ForEachProcessesPushedWork)
{
    // Each item n spawns n-1 and n-2 (bounded fan-out); count total
    // operator applications against a serial model.
    auto serial_count = [](int n) {
        std::vector<int> stack{n};
        uint64_t count = 0;
        while (!stack.empty()) {
            const int x = stack.back();
            stack.pop_back();
            ++count;
            if (x > 0) {
                stack.push_back(x - 1);
                if (x > 1) {
                    stack.push_back(x - 2);
                }
            }
        }
        return count;
    };
    Accumulator<uint64_t> count;
    const std::vector<int> initial{12};
    for_each<int>(initial, [&](int item, UserContext<int>& ctx) {
        count += 1;
        if (item > 0) {
            ctx.push(item - 1);
            if (item > 1) {
                ctx.push(item - 2);
            }
        }
    });
    EXPECT_EQ(count.reduce(), serial_count(12));
}

TEST_P(RuntimeTest, ForEachEmptyInitial)
{
    Accumulator<int> count;
    for_each<int>(std::vector<int>{},
                  [&](int, UserContext<int>&) { count += 1; });
    EXPECT_EQ(count.reduce(), 0);
}

TEST_P(RuntimeTest, ObimProcessesEverythingOnce)
{
    std::vector<unsigned> initial(5000);
    std::iota(initial.begin(), initial.end(), 0u);
    std::vector<std::atomic<uint8_t>> hits(5000);
    for_each_ordered<unsigned>(
        initial, [](unsigned item) { return item % 13; },
        [&](unsigned item, OrderedContext<unsigned>&) {
            hits[item].fetch_add(1);
        });
    for (std::size_t i = 0; i < hits.size(); ++i) {
        ASSERT_EQ(hits[i].load(), 1u) << "item " << i;
    }
}

TEST_P(RuntimeTest, ObimHandlesPushedWorkAndLowerPriorities)
{
    // Items push children at lower priority values; everything must
    // still be processed.
    Accumulator<uint64_t> count;
    const std::vector<unsigned> initial{16};
    for_each_ordered<unsigned>(
        initial, [](unsigned item) { return item; },
        [&](unsigned item, OrderedContext<unsigned>& ctx) {
            count += 1;
            if (item > 0) {
                ctx.push(item - 1, item - 1);
            }
        });
    EXPECT_EQ(count.reduce(), 17u);
}

TEST_P(RuntimeTest, ObimRoughlyRespectsPriorityOrder)
{
    // With a single thread the OBIM order is exact: strictly ascending
    // priorities when no work is pushed.
    if (GetParam() != 1) {
        GTEST_SKIP() << "exact order is only guaranteed single-threaded";
    }
    std::vector<unsigned> initial;
    for (unsigned i = 0; i < 100; ++i) {
        initial.push_back(99 - i);
    }
    std::vector<unsigned> order;
    for_each_ordered<unsigned>(
        initial, [](unsigned item) { return item / 10; },
        [&](unsigned item, OrderedContext<unsigned>&) {
            order.push_back(item);
        });
    ASSERT_EQ(order.size(), 100u);
    for (std::size_t i = 1; i < order.size(); ++i) {
        EXPECT_LE(order[i - 1] / 10, order[i] / 10);
    }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, RuntimeTest,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto& info) {
                             return "Threads" +
                                 std::to_string(info.param);
                         });

} // namespace
} // namespace gas::rt
