/**
 * @file
 * Tests for the gas::trace span tracer: nesting invariants, concurrent
 * emission, ring wrap-around, the disabled-mode zero-allocation
 * guarantee, Chrome-trace export, and the counter-attribution
 * invariant (sum of per-span self deltas == global counter totals)
 * over a full la::pagerank run.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <new>
#include <set>
#include <sstream>
#include <string>

#include "graph/builder.h"
#include "graph/generators.h"
#include "lagraph/lagraph.h"
#include "lonestar/lonestar.h"
#include "matrix/matrix.h"
#include "metrics/counters.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"
#include "support/timer.h"
#include "trace/trace.h"

// ---- Global allocation counter for the zero-allocation test ----
// Counts every operator new in the binary; the disabled-tracing test
// asserts the count does not move across a burst of Span constructions.

namespace {
std::atomic<uint64_t> g_allocations{0};
} // namespace

void*
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) {
        return p;
    }
    throw std::bad_alloc();
}

void*
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace gas {
namespace {

using graph::Graph;

/// RAII guard: every test leaves tracing disabled and the rings empty.
struct TraceScope
{
    TraceScope()
    {
        trace::set_enabled(true);
        trace::reset();
    }
    ~TraceScope()
    {
        trace::set_enabled(false);
        trace::reset();
    }
};

Graph
small_graph()
{
    auto list = graph::rmat(9, 8, 123);
    graph::remove_self_loops(list);
    graph::symmetrize(list);
    graph::randomize_weights(list, 7, 1, 64);
    return Graph::from_edge_list(list, true);
}

TEST(Trace, DisabledSpansRecordNothingAndAllocateNothing)
{
    trace::set_enabled(false);
    trace::reset();
    const uint64_t before = g_allocations.load();
    for (int i = 0; i < 100000; ++i) {
        trace::Span span(trace::Category::kGrb, "noop", i);
        trace::instant(trace::Category::kStall, "noop");
        trace::stall(now_ns());
    }
    EXPECT_EQ(g_allocations.load(), before);
    const auto data = trace::snapshot();
    EXPECT_TRUE(data.spans.empty());
    EXPECT_EQ(data.dropped, 0u);
}

TEST(Trace, NestingInvariants)
{
    TraceScope scope;
    {
        trace::Span outer(trace::Category::kAlgo, "outer");
        {
            trace::Span inner(trace::Category::kRound, "inner", 3);
        }
        {
            trace::Span inner(trace::Category::kRound, "inner2");
        }
    }
    const auto data = trace::snapshot();
    ASSERT_EQ(data.spans.size(), 3u);
    // Per-thread completion order: children before their parent.
    const auto& inner = data.spans[0];
    const auto& inner2 = data.spans[1];
    const auto& outer = data.spans[2];
    EXPECT_STREQ(inner.name, "inner");
    EXPECT_STREQ(inner2.name, "inner2");
    EXPECT_STREQ(outer.name, "outer");
    EXPECT_EQ(inner.arg, 3u);
    EXPECT_EQ(outer.depth, 0);
    EXPECT_EQ(inner.depth, 1);
    EXPECT_EQ(inner2.depth, 1);
    // Timestamps nest: parent contains both children, children are
    // ordered, and every span is well-formed.
    for (const auto& s : data.spans) {
        EXPECT_LE(s.begin_ns, s.end_ns);
    }
    EXPECT_LE(outer.begin_ns, inner.begin_ns);
    EXPECT_LE(inner.end_ns, inner2.begin_ns);
    EXPECT_LE(inner2.end_ns, outer.end_ns);
}

TEST(Trace, SelfDeltaExcludesChildren)
{
    TraceScope scope;
    metrics::reset();
    {
        trace::Span outer(trace::Category::kAlgo, "outer");
        metrics::bump(metrics::kWorkItems, 10);
        {
            trace::Span inner(trace::Category::kRound, "inner");
            metrics::bump(metrics::kWorkItems, 7);
        }
        metrics::bump(metrics::kWorkItems, 5);
    }
    const auto data = trace::snapshot();
    ASSERT_EQ(data.spans.size(), 2u);
    EXPECT_EQ(data.spans[0].self[metrics::kWorkItems], 7u);  // inner
    EXPECT_EQ(data.spans[1].self[metrics::kWorkItems], 15u); // outer
}

TEST(Trace, ConcurrentEmissionOneWorkerSpanPerThread)
{
    rt::set_num_threads(4);
    TraceScope scope;
    std::atomic<uint64_t> sink{0};
    rt::do_all(100000, [&](std::size_t i) {
        sink.fetch_add(i, std::memory_order_relaxed);
    });
    const auto data = trace::snapshot();
    std::set<uint32_t> worker_tids;
    unsigned regions = 0;
    for (const auto& s : data.spans) {
        if (s.category == trace::Category::kWorker) {
            worker_tids.insert(s.tid);
        }
        if (s.category == trace::Category::kRuntime) {
            ++regions;
        }
    }
    EXPECT_EQ(regions, 1u);
    // Every pool thread that participated emitted exactly one worker
    // span; with 100k items all 4 participate.
    EXPECT_EQ(worker_tids.size(), 4u);
    EXPECT_EQ(data.dropped, 0u);
}

TEST(Trace, RingWrapDropsOldestAndCounts)
{
    trace::set_enabled(true);
    const std::size_t old_capacity = trace::ring_capacity();
    trace::set_ring_capacity(16);
    trace::reset();
    for (int i = 0; i < 100; ++i) {
        trace::Span span(trace::Category::kGrb, "filler", i);
    }
    const auto data = trace::snapshot();
    EXPECT_EQ(data.spans.size(), 16u);
    EXPECT_EQ(data.dropped, 84u);
    // Oldest-first eviction: the survivors are the newest 16.
    for (const auto& s : data.spans) {
        EXPECT_GE(s.arg, 84u);
    }
    trace::set_ring_capacity(old_capacity);
    trace::set_enabled(false);
    trace::reset();
}

TEST(Trace, AttributionSumsMatchGlobalTotals)
{
    // The acceptance-criteria invariant: per-span self deltas over a
    // full la::pagerank run sum to the global counter totals — every
    // work item and materialized byte lands in exactly one phase.
    rt::set_num_threads(4);
    const Graph graph = small_graph();
    const Graph transpose = graph::transpose(graph);
    grb::BackendScope backend(grb::Backend::kParallel);
    const auto A = grb::Matrix<double>::from_graph(graph, false);
    const auto At = A.transpose();

    TraceScope scope;
    metrics::reset();
    const metrics::Interval interval;
    la::pagerank(A, At, 0.85, 10);
    const auto totals = interval.delta();
    const auto data = trace::snapshot();
    ASSERT_EQ(data.dropped, 0u);
    ASSERT_FALSE(data.spans.empty());

    std::array<uint64_t, metrics::kNumCounters> summed{};
    for (const auto& s : data.spans) {
        for (unsigned c = 0; c < metrics::kNumCounters; ++c) {
            summed[c] += s.self[c];
        }
    }
    EXPECT_GT(totals[metrics::kWorkItems], 0u);
    EXPECT_GT(totals[metrics::kBytesMaterialized], 0u);
    for (unsigned c = 0; c < metrics::kNumCounters; ++c) {
        const auto id = static_cast<metrics::CounterId>(c);
        EXPECT_EQ(summed[c], totals[id])
            << "counter " << metrics::counter_name(id);
    }
}

TEST(Trace, ObimGaugesBalanceAndStallsAttributed)
{
    rt::set_num_threads(4);
    const Graph graph = small_graph();
    metrics::reset();
    metrics::gauges_reset();
    TraceScope scope;
    ls::SsspOptions options;
    options.delta = 8;
    ls::sssp(graph, 0, options);
    // Every bin that became non-empty was drained: the live gauge is
    // balanced back to zero and the high-water mark saw at least one.
    EXPECT_EQ(metrics::gauge_read(metrics::kObimBinsLive), 0u);
    EXPECT_GE(metrics::gauge_read(metrics::kObimBinsLiveMax), 1u);
    const auto data = trace::snapshot();
    bool saw_region = false;
    for (const auto& s : data.spans) {
        if (s.category == trace::Category::kRuntime &&
            std::strcmp(s.name, "obim_relax") == 0) {
            saw_region = true;
        }
    }
    EXPECT_TRUE(saw_region);
}

TEST(Trace, ChromeTraceExportIsWellFormed)
{
    rt::set_num_threads(2);
    TraceScope scope;
    {
        trace::Span algo(trace::Category::kAlgo, "export_test");
        rt::do_all(1000, [](std::size_t) {});
    }
    const auto path =
        std::filesystem::temp_directory_path() / "gas_trace_test.json";
    ASSERT_TRUE(trace::write_chrome_trace(path.string()));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    // Structural smoke checks; CI additionally runs a real JSON parser
    // over a bench-produced trace.
    EXPECT_EQ(text.front(), '[');
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.find("export_test"), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);
    std::filesystem::remove(path);
}

TEST(Trace, NowNsMonotonic)
{
    uint64_t last = now_ns();
    for (int i = 0; i < 10000; ++i) {
        const uint64_t t = now_ns();
        EXPECT_LE(last, t);
        last = t;
    }
}

} // namespace
} // namespace gas
