/**
 * @file
 * Tests for the extension workloads — k-core decomposition and
 * betweenness centrality — in both APIs, against the serial oracles
 * and a brute-force validator, across graph fixtures and backends.
 */

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "lagraph/lagraph.h"
#include "lonestar/lonestar.h"
#include "runtime/thread_pool.h"
#include "verify/reference.h"

namespace gas {
namespace {

using graph::EdgeList;
using graph::Graph;
using graph::Node;

/// Independent slow validator for core numbers: repeated naive peeling.
std::vector<uint32_t>
naive_core_numbers(const Graph& graph)
{
    const Node n = graph.num_nodes();
    std::vector<uint32_t> degree(n);
    std::vector<bool> alive(n, true);
    uint32_t max_degree = 0;
    for (Node v = 0; v < n; ++v) {
        degree[v] = static_cast<uint32_t>(graph.out_degree(v));
        max_degree = std::max(max_degree, degree[v]);
    }
    std::vector<uint32_t> core(n, 0);
    Node remaining = n;
    for (uint32_t k = 0; k <= max_degree && remaining > 0; ++k) {
        bool changed = true;
        while (changed) {
            changed = false;
            for (Node v = 0; v < n; ++v) {
                if (alive[v] && degree[v] <= k) {
                    alive[v] = false;
                    core[v] = k;
                    --remaining;
                    changed = true;
                    for (const Node u : graph.out_neighbors(v)) {
                        if (alive[u]) {
                            --degree[u];
                        }
                    }
                }
            }
        }
    }
    return core;
}

struct Fixture
{
    std::string name;
    EdgeList list;
};

std::vector<Fixture>
fixtures()
{
    std::vector<Fixture> out;
    auto add = [&out](std::string name, EdgeList list) {
        graph::remove_self_loops(list);
        graph::symmetrize(list);
        out.push_back({std::move(name), std::move(list)});
    };
    add("karate", graph::karate_club());
    add("path50", graph::path(50));
    add("grid9x7", graph::grid2d(9, 7, 5, 0.0));
    add("rmat8", graph::rmat(8, 8, 31));
    add("web500", graph::web_copying(500, 8, 77));
    add("complete12", graph::complete(12));
    return out;
}

class ExtraAppsTest : public ::testing::TestWithParam<Fixture>
{
  protected:
    void SetUp() override
    {
        rt::set_num_threads(4);
        graph_ = Graph::from_edge_list(GetParam().list, false);
        graph_.sort_adjacencies();
    }

    std::vector<Node>
    bc_sources() const
    {
        std::vector<Node> sources;
        for (Node v = 0; v < graph_.num_nodes(); v += 7) {
            sources.push_back(v);
        }
        return sources;
    }

    Graph graph_;
};

TEST_P(ExtraAppsTest, OracleCoreNumbersMatchNaivePeeling)
{
    EXPECT_EQ(verify::core_numbers(graph_), naive_core_numbers(graph_));
}

TEST_P(ExtraAppsTest, LonestarCoreNumbersMatchOracle)
{
    EXPECT_EQ(ls::core_numbers(graph_), verify::core_numbers(graph_));
}

TEST_P(ExtraAppsTest, LagraphCoreNumbersMatchOracle)
{
    const auto A = grb::Matrix<uint32_t>::from_graph(graph_, false);
    for (const auto backend :
         {grb::Backend::kReference, grb::Backend::kParallel}) {
        grb::BackendScope scope(backend);
        EXPECT_EQ(la::core_numbers(A), verify::core_numbers(graph_));
    }
}

TEST_P(ExtraAppsTest, KnownCoreFacts)
{
    if (GetParam().name == "complete12") {
        // K12: every vertex has core number 11.
        for (const uint32_t c : verify::core_numbers(graph_)) {
            EXPECT_EQ(c, 11u);
        }
    }
    if (GetParam().name == "path50") {
        // A path is a 1-core everywhere.
        for (const uint32_t c : verify::core_numbers(graph_)) {
            EXPECT_EQ(c, 1u);
        }
    }
}

TEST_P(ExtraAppsTest, LonestarBetweennessMatchesOracle)
{
    const auto sources = bc_sources();
    const auto expected = verify::betweenness(graph_, sources);
    const auto measured = ls::betweenness(graph_, sources);
    ASSERT_EQ(measured.size(), expected.size());
    for (std::size_t v = 0; v < measured.size(); ++v) {
        ASSERT_NEAR(measured[v], expected[v],
                    1e-9 * (1.0 + std::abs(expected[v])))
            << "vertex " << v;
    }
}

TEST_P(ExtraAppsTest, LagraphBetweennessMatchesOracle)
{
    const auto A = grb::Matrix<double>::from_graph(graph_, false);
    const auto At = A.transpose();
    std::vector<grb::Index> sources;
    for (const Node s : bc_sources()) {
        sources.push_back(s);
    }
    const auto expected = verify::betweenness(graph_, bc_sources());
    for (const auto backend :
         {grb::Backend::kReference, grb::Backend::kParallel}) {
        grb::BackendScope scope(backend);
        const auto measured = la::betweenness(A, At, sources);
        ASSERT_EQ(measured.size(), expected.size());
        for (std::size_t v = 0; v < measured.size(); ++v) {
            ASSERT_NEAR(measured[v], expected[v],
                        1e-9 * (1.0 + std::abs(expected[v])))
                << "vertex " << v;
        }
    }
}

TEST_P(ExtraAppsTest, BetweennessSingleSourceHubDominates)
{
    if (GetParam().name != "karate") {
        GTEST_SKIP();
    }
    // From any single source, cut vertices carry more dependency than
    // leaves; sanity check against the known karate structure where
    // vertices 0 and 33 dominate when all sources contribute.
    std::vector<Node> all_sources(graph_.num_nodes());
    for (Node v = 0; v < graph_.num_nodes(); ++v) {
        all_sources[v] = v;
    }
    const auto bc = verify::betweenness(graph_, all_sources);
    double max_bc = 0.0;
    Node argmax = 0;
    for (Node v = 0; v < graph_.num_nodes(); ++v) {
        if (bc[v] > max_bc) {
            max_bc = bc[v];
            argmax = v;
        }
    }
    EXPECT_TRUE(argmax == 0 || argmax == 33) << "argmax " << argmax;
}

INSTANTIATE_TEST_SUITE_P(Graphs, ExtraAppsTest,
                         ::testing::ValuesIn(fixtures()),
                         [](const auto& info) {
                             return info.param.name;
                         });

} // namespace
} // namespace gas
