/**
 * @file
 * Tests for the study harness: suite construction, the cell runner
 * (timing, verification, counters, memory), and table formatting.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/runner.h"
#include "core/suite.h"
#include "core/table.h"
#include "graph/builder.h"
#include "runtime/thread_pool.h"

namespace gas::core {
namespace {

constexpr double kTinyScale = 0.05;

TEST(Suite, HasNinePaperGraphs)
{
    const auto names = suite_graph_names();
    ASSERT_EQ(names.size(), 9u);
    EXPECT_EQ(names.front(), "road-USA-W");
    EXPECT_EQ(names.back(), "uk07");
}

TEST(Suite, GraphsAreWellFormed)
{
    for (const auto& name : suite_graph_names()) {
        const auto input = build_suite_graph(name, kTinyScale);
        EXPECT_GT(input.directed.num_nodes(), 0u) << name;
        EXPECT_GT(input.directed.num_edges(), 0u) << name;
        EXPECT_TRUE(input.directed.has_weights()) << name;
        EXPECT_TRUE(graph::is_symmetric(input.symmetric)) << name;
        EXPECT_TRUE(input.symmetric.adjacencies_sorted()) << name;
        EXPECT_LT(input.source, input.directed.num_nodes()) << name;
    }
}

TEST(Suite, RoadPolicyApplied)
{
    const auto road = build_suite_graph("road-USA", kTinyScale);
    EXPECT_TRUE(road.is_road);
    EXPECT_EQ(road.source, 0u);
    EXPECT_EQ(road.ktruss_k, 4u);
    const auto social = build_suite_graph("twitter40", kTinyScale);
    EXPECT_FALSE(social.is_road);
    EXPECT_EQ(social.ktruss_k, 7u);
}

TEST(Suite, ScaleGrowsGraphs)
{
    const auto small = build_suite_graph("rmat22", 0.05);
    const auto large = build_suite_graph("rmat22", 1.0);
    EXPECT_GT(large.directed.num_nodes(), small.directed.num_nodes());
}

TEST(Suite, DeterministicAcrossBuilds)
{
    const auto a = build_suite_graph("eukarya", kTinyScale);
    const auto b = build_suite_graph("eukarya", kTinyScale);
    EXPECT_EQ(a.directed.num_edges(), b.directed.num_edges());
    EXPECT_EQ(graph::to_edge_list(a.directed).edges,
              graph::to_edge_list(b.directed).edges);
}

class RunnerTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        rt::set_num_threads(2);
        input_ = build_suite_graph("rmat22", kTinyScale);
    }

    SuiteGraph input_;
};

TEST_F(RunnerTest, AllCellsVerifyCorrect)
{
    RunConfig config;
    config.repetitions = 1;
    for (const App app : {App::kBfs, App::kCc, App::kKtruss, App::kPr,
                          App::kSssp, App::kTc}) {
        for (const System system :
             {System::kSuiteSparse, System::kGaloisBlas,
              System::kLonestar}) {
            const auto result = run_cell(app, system, input_, config);
            EXPECT_TRUE(result.verified)
                << app_name(app) << "/" << system_name(system);
            EXPECT_TRUE(result.correct)
                << app_name(app) << "/" << system_name(system);
            EXPECT_FALSE(result.timed_out);
            EXPECT_GT(result.peak_bytes, 0u);
        }
    }
}

TEST_F(RunnerTest, CountersArePopulated)
{
    RunConfig config;
    config.repetitions = 1;
    const auto result =
        run_cell(App::kBfs, System::kGaloisBlas, input_, config);
    EXPECT_GT(result.counters[metrics::kWorkItems], 0u);
    EXPECT_GT(result.counters[metrics::kRounds], 0u);
    EXPECT_GT(result.counters[metrics::kPasses], 0u);
}

TEST_F(RunnerTest, MatrixSystemsMaterializeMoreThanLonestar)
{
    RunConfig config;
    config.repetitions = 1;
    const auto gb =
        run_cell(App::kTc, System::kGaloisBlas, input_, config);
    const auto ls = run_cell(App::kTc, System::kLonestar, input_, config);
    EXPECT_GT(gb.counters[metrics::kBytesMaterialized],
              ls.counters[metrics::kBytesMaterialized]);
}

TEST_F(RunnerTest, SameSignatureAcrossSystems)
{
    RunConfig config;
    config.repetitions = 1;
    const auto ss =
        run_cell(App::kSssp, System::kSuiteSparse, input_, config);
    const auto gb =
        run_cell(App::kSssp, System::kGaloisBlas, input_, config);
    const auto ls =
        run_cell(App::kSssp, System::kLonestar, input_, config);
    EXPECT_EQ(ss.result_signature, ls.result_signature);
    EXPECT_EQ(gb.result_signature, ls.result_signature);
}

TEST_F(RunnerTest, TimeoutMarksCell)
{
    RunConfig config;
    config.repetitions = 3;
    config.timeout_seconds = 0.0; // everything "times out"
    const auto result =
        run_cell(App::kBfs, System::kLonestar, input_, config);
    EXPECT_TRUE(result.timed_out);
    EXPECT_EQ(format_cell(result), "TO");
}

TEST(FormatCell, Formats)
{
    CellResult result;
    result.seconds = 0.1234;
    result.verified = true;
    result.correct = true;
    EXPECT_EQ(format_cell(result), "0.123");
    result.seconds = 42.5;
    EXPECT_EQ(format_cell(result), "42.50");
    result.correct = false;
    EXPECT_EQ(format_cell(result), "C");
    result.timed_out = true;
    EXPECT_EQ(format_cell(result), "TO");
}

TEST(TableTest, PrintAndCsv)
{
    Table table("demo");
    table.set_header({"a", "b"});
    table.add_row({"x", "1"});
    table.add_row({"y", "22"});
    EXPECT_EQ(table.rows().size(), 2u);

    const auto path = (std::filesystem::temp_directory_path() /
                       "gas_table_test.csv")
                          .string();
    table.write_csv(path);
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "x,1");
    in.close();
    std::remove(path.c_str());
}

TEST(SystemNames, Stable)
{
    EXPECT_STREQ(system_name(System::kSuiteSparse), "SS");
    EXPECT_STREQ(system_name(System::kGaloisBlas), "GB");
    EXPECT_STREQ(system_name(System::kLonestar), "LS");
    EXPECT_STREQ(app_name(App::kKtruss), "ktruss");
}

} // namespace
} // namespace gas::core
