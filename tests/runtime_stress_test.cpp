/**
 * @file
 * Stress and interaction tests for the runtime: heavy for_each churn,
 * OBIM under priority inversion, nested constructs, repeated pool
 * resizing, and reducer reuse across regions.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>

#include "runtime/chase_lev.h"
#include "runtime/for_each.h"
#include "runtime/insert_bag.h"
#include "runtime/obim.h"
#include "runtime/parallel.h"
#include "runtime/reducers.h"
#include "runtime/thread_pool.h"
#include "support/cancel.h"
#include "support/random.h"

namespace gas::rt {
namespace {

TEST(RuntimeStress, RepeatedPoolResizing)
{
    for (const unsigned threads : {1u, 3u, 8u, 2u, 5u, 1u, 4u}) {
        set_num_threads(threads);
        Accumulator<uint64_t> sum;
        do_all(1000, [&](std::size_t i) { sum += i; });
        ASSERT_EQ(sum.reduce(), 1000u * 999 / 2) << threads;
    }
    set_num_threads(4);
}

TEST(RuntimeStress, ManySmallParallelRegions)
{
    set_num_threads(4);
    uint64_t total = 0;
    for (int round = 0; round < 2000; ++round) {
        Accumulator<uint64_t> sum;
        do_all(8, [&](std::size_t i) { sum += i; });
        total += sum.reduce();
    }
    EXPECT_EQ(total, 2000u * 28);
}

TEST(RuntimeStress, ForEachDeepRecursiveFanout)
{
    // Binary fan-out of depth 14: 2^15 - 1 operator applications.
    set_num_threads(4);
    Accumulator<uint64_t> count;
    const std::vector<unsigned> initial{14};
    for_each<unsigned>(initial, [&](unsigned depth,
                                    UserContext<unsigned>& ctx) {
        count += 1;
        if (depth > 0) {
            ctx.push(depth - 1);
            ctx.push(depth - 1);
        }
    });
    EXPECT_EQ(count.reduce(), (uint64_t{1} << 15) - 1);
}

TEST(RuntimeStress, ForEachRandomizedChurn)
{
    // Items randomly spawn 0-2 children, bounded by a budget; the
    // processed count must equal the pushed count exactly.
    set_num_threads(8);
    std::atomic<uint64_t> budget{20000};
    Accumulator<uint64_t> processed;
    Accumulator<uint64_t> pushed;
    std::vector<uint64_t> initial(64);
    std::iota(initial.begin(), initial.end(), 1u);
    pushed += initial.size();
    for_each<uint64_t>(initial, [&](uint64_t seed,
                                    UserContext<uint64_t>& ctx) {
        processed += 1;
        Rng rng(seed);
        const unsigned children = rng.next_bounded(3);
        for (unsigned c = 0; c < children; ++c) {
            if (budget.fetch_sub(1, std::memory_order_relaxed) > 0) {
                pushed += 1;
                ctx.push(rng.next());
            }
        }
    });
    EXPECT_EQ(processed.reduce(), pushed.reduce());
}

TEST(RuntimeStress, ForEachPushStormAcrossThreadCounts)
{
    // High-contention push storm to pin the Chase-Lev termination
    // protocol: every operator pushes kFanout children down to a depth
    // bound, so the worklist both grows explosively (deque buffers must
    // grow) and drains to empty repeatedly (thieves race the owners for
    // last items). The total operator count has a closed form:
    // kRoots * (kFanout^(kDepth+1) - 1) / (kFanout - 1).
    constexpr uint64_t kFanout = 4;
    constexpr unsigned kDepth = 7;
    constexpr uint64_t kRoots = 8;
    uint64_t per_root = 0;
    uint64_t level = 1;
    for (unsigned d = 0; d <= kDepth; ++d) {
        per_root += level;
        level *= kFanout;
    }
    const uint64_t expected = kRoots * per_root;

    const unsigned max_threads =
        std::max(4u, std::thread::hardware_concurrency());
    for (const unsigned threads : {1u, 2u, max_threads}) {
        set_num_threads(threads);
        Accumulator<uint64_t> count;
        const std::vector<unsigned> initial(kRoots, kDepth);
        for_each<unsigned>(initial, [&](unsigned depth,
                                        UserContext<unsigned>& ctx) {
            count += 1;
            if (depth > 0) {
                for (uint64_t c = 0; c < kFanout; ++c) {
                    ctx.push(depth - 1);
                }
            }
        });
        ASSERT_EQ(count.reduce(), expected) << threads << " threads";
    }
    set_num_threads(4);
}

TEST(RuntimeStress, ObimBinMemoryStaysBounded)
{
    // Regression: a PriorityBin fed as fast as it drains never hits
    // its fully-drained reset, so before the compaction fix the
    // processed prefix (and the backing vector) grew without bound.
    detail::PriorityBin<int> bin;
    for (int i = 0; i < 4; ++i) {
        bin.push(i); // keep the bin permanently non-empty
    }
    std::vector<int> out;
    constexpr int kRounds = 100000;
    std::size_t high_water = 0;
    bool became_empty = false;
    for (int i = 0; i < kRounds; ++i) {
        bin.push(i);
        bin.push(i);
        out.clear();
        ASSERT_EQ(bin.pop_batch(out, 2, became_empty), 2u);
        high_water = std::max(high_water, bin.storage_size());
    }
    // 4 live items + a bounded drained prefix; without compaction the
    // storage would reach ~2 * kRounds slots.
    EXPECT_LE(high_water,
              2 * (4 + detail::PriorityBin<int>::kCompactMin));
}

TEST(RuntimeStress, ObimBinCompactionPreservesFifoOrder)
{
    detail::PriorityBin<unsigned> bin;
    std::vector<unsigned> out;
    unsigned pushed = 0;
    unsigned popped = 0;
    bool became_empty = false;
    for (int round = 0; round < 5000; ++round) {
        for (int i = 0; i < 3; ++i) {
            bin.push(pushed++);
        }
        out.clear();
        bin.pop_batch(out, 3, became_empty);
        for (const unsigned item : out) {
            ASSERT_EQ(item, popped++); // strict FIFO across compactions
        }
    }
    while (popped < pushed) {
        out.clear();
        ASSERT_NE(bin.pop_batch(out, 16, became_empty), 0u);
        for (const unsigned item : out) {
            ASSERT_EQ(item, popped++);
        }
    }
}

TEST(RuntimeStress, ObimPriorityInversionChurn)
{
    // High-priority items spawn low-priority items and vice versa;
    // everything must still be processed exactly once.
    set_num_threads(4);
    constexpr unsigned kItems = 4000;
    std::vector<std::atomic<uint32_t>> hits(kItems);
    std::vector<unsigned> initial;
    for (unsigned i = 0; i < kItems / 2; ++i) {
        initial.push_back(i);
    }
    for_each_ordered<unsigned>(
        initial, [](unsigned item) { return item % 97; },
        [&](unsigned item, OrderedContext<unsigned>& ctx) {
            hits[item].fetch_add(1);
            const unsigned child = item + kItems / 2;
            if (child < kItems) {
                // Children get the *opposite* end of the priority range.
                ctx.push(child, 96 - (item % 97));
            }
        });
    for (unsigned i = 0; i < kItems; ++i) {
        ASSERT_EQ(hits[i].load(), 1u) << "item " << i;
    }
}

TEST(RuntimeStress, ObimClampsHugePriorities)
{
    set_num_threads(2);
    Accumulator<uint64_t> count;
    const std::vector<unsigned> initial{1, 2, 3};
    for_each_ordered<unsigned>(
        initial,
        [](unsigned item) { return item * 1000000000u; }, // clamped
        [&](unsigned, OrderedContext<unsigned>&) { count += 1; });
    EXPECT_EQ(count.reduce(), 3u);
}

TEST(RuntimeStress, InsertBagHeavyMixedUse)
{
    set_num_threads(8);
    InsertBag<uint64_t> bag;
    for (int round = 0; round < 5; ++round) {
        bag.clear();
        do_all(100000, [&](std::size_t i) {
            if (i % 3 == 0) {
                bag.push(i);
            }
        });
        Accumulator<uint64_t> count;
        bag.parallel_apply([&](uint64_t item) {
            ASSERT_EQ(item % 3, 0u);
            count += 1;
        });
        ASSERT_EQ(count.reduce(), bag.size());
        ASSERT_EQ(count.reduce(), 33334u);
    }
}

TEST(RuntimeStress, NestedDoAllInsideForEach)
{
    set_num_threads(4);
    Accumulator<uint64_t> total;
    std::vector<int> initial(32);
    std::iota(initial.begin(), initial.end(), 0);
    for_each<int>(initial, [&](int, UserContext<int>&) {
        // Nested bulk loop runs inline on the worker.
        do_all(100, [&](std::size_t) { total += 1; });
    });
    EXPECT_EQ(total.reduce(), 3200u);
}

TEST(RuntimeStress, ChaseLevLastItemPopStealDuel)
{
    // Pins the seq_cst store-load pair in pop() and the acq_rel CAS
    // downgrade: the owner repeatedly pushes one item and pops it while
    // three thieves hammer steal(). Exactly one side may win each item.
    // Run under the tsan preset this exercises the orderings the
    // chase_lev.h audit argues are minimal.
    constexpr int kItems = 20000;
    ChaseLevDeque<int> deque(2); // tiny: forces early grow() too
    std::atomic<uint64_t> owner_got{0};
    std::atomic<uint64_t> stolen{0};
    std::atomic<bool> done{false};

    std::vector<std::thread> thieves;
    thieves.reserve(3);
    for (int t = 0; t < 3; ++t) {
        thieves.emplace_back([&] {
            int item = 0;
            while (!done.load(std::memory_order_acquire)) {
                if (deque.steal(item)) {
                    stolen.fetch_add(1, std::memory_order_relaxed);
                }
            }
            while (deque.steal(item)) {
                stolen.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    for (int i = 0; i < kItems; ++i) {
        deque.push(i);
        int item = 0;
        if (deque.pop(item)) {
            owner_got.fetch_add(1, std::memory_order_relaxed);
        }
    }
    done.store(true, std::memory_order_release);
    for (auto& thief : thieves) {
        thief.join();
    }
    EXPECT_EQ(owner_got.load() + stolen.load(),
              static_cast<uint64_t>(kItems));
}

TEST(RuntimeStress, ChaseLevGrowDuringConcurrentSteals)
{
    // Pins the release half of the thief CAS against push()'s acquire
    // top_ load: a deque seeded with minimal capacity grows repeatedly
    // while thieves read cells about to be overwritten on wraparound.
    // Every pushed value must be consumed exactly once, unmangled.
    constexpr int kRounds = 500;
    constexpr int kPerRound = 64;
    ChaseLevDeque<int> deque(2);
    std::vector<std::atomic<uint32_t>> hits(kRounds * kPerRound);
    std::atomic<bool> done{false};

    std::vector<std::thread> thieves;
    thieves.reserve(4);
    for (int t = 0; t < 4; ++t) {
        thieves.emplace_back([&] {
            int item = 0;
            int batch[ChaseLevDeque<int>::kMaxBatch];
            while (!done.load(std::memory_order_acquire)) {
                const std::size_t got = deque.steal_batch(batch, 8);
                for (std::size_t k = 0; k < got; ++k) {
                    hits[batch[k]].fetch_add(1);
                }
                if (got == 0 && deque.steal(item)) {
                    hits[item].fetch_add(1);
                }
            }
            while (deque.steal(item)) {
                hits[item].fetch_add(1);
            }
        });
    }

    int next = 0;
    for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kPerRound; ++i) {
            deque.push(next++);
        }
        // Pop roughly half from the bottom so both ends stay active.
        int item = 0;
        for (int i = 0; i < kPerRound / 2; ++i) {
            if (deque.pop(item)) {
                hits[item].fetch_add(1);
            }
        }
    }
    int item = 0;
    while (deque.pop(item)) {
        hits[item].fetch_add(1);
    }
    done.store(true, std::memory_order_release);
    for (auto& thief : thieves) {
        thief.join();
    }
    for (int i = 0; i < kRounds * kPerRound; ++i) {
        ASSERT_EQ(hits[i].load(), 1u) << "item " << i;
    }
}

TEST(RuntimeStress, CancelMidForEachAcrossThreadCounts)
{
    // Trip a CancelToken from inside the operator while the worklist is
    // still fanning out. The region must terminate promptly (workers
    // stop claiming batches at the next poll) without wedging the
    // Chase-Lev termination protocol, and must leave the pool healthy
    // for the next region. Exercised at 1 thread (inline unwind), 2
    // (one thief), and the full machine (steal storm).
    constexpr uint64_t kFanout = 4;
    constexpr unsigned kDepth = 9;
    const unsigned max_threads =
        std::max(4u, std::thread::hardware_concurrency());
    for (const unsigned threads : {1u, 2u, max_threads}) {
        set_num_threads(threads);
        std::atomic<uint64_t> processed{0};
        {
            CancelToken token;
            CancelScope scope(token);
            const std::vector<unsigned> initial(8, kDepth);
            for_each<unsigned>(initial, [&](unsigned depth,
                                            UserContext<unsigned>& ctx) {
                if (processed.fetch_add(1, std::memory_order_relaxed) ==
                    256) {
                    token.cancel();
                }
                if (depth > 0) {
                    for (uint64_t c = 0; c < kFanout; ++c) {
                        ctx.push(depth - 1);
                    }
                }
            });
            // Full fan-out would be 8 * (4^10 - 1) / 3 ≈ 2.8M operator
            // applications; a cancelled region must stop far short.
            EXPECT_TRUE(token.requested()) << threads << " threads";
            EXPECT_LT(processed.load(), 1000000u) << threads << " threads";
            EXPECT_EQ(cancel_status().code(), StatusCode::kCancelled)
                << threads << " threads";
        }

        // The pool must be reusable after an abandoned region (the
        // tripped token is uninstalled with its scope).
        Accumulator<uint64_t> sum;
        do_all(1000, [&](std::size_t i) { sum += i; });
        ASSERT_EQ(sum.reduce(), 1000u * 999 / 2) << threads;
    }
    set_num_threads(4);
}

TEST(RuntimeStress, ReducersAcrossManyRegions)
{
    set_num_threads(4);
    ReduceMax<int64_t> max_val;
    for (int region = 0; region < 100; ++region) {
        do_all(64, [&](std::size_t i) {
            max_val.update(static_cast<int64_t>(region * 64 + i));
        });
    }
    EXPECT_EQ(max_val.reduce(), 100 * 64 - 1);
}

} // namespace
} // namespace gas::rt
