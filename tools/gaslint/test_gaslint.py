#!/usr/bin/env python3
"""Fixture suite for gaslint.

For every check, a `<slug>_bad.cpp` fixture must produce at least one
finding of that check and a `<slug>_good.cpp` fixture must produce
none. Fixtures live in tests/lint_fixtures/ and are never compiled
(the test build only globs *_test.cpp); they are lexed, not built.

Run directly or via ctest (the gaslint_fixtures test).
"""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
GASLINT = ROOT / "tools" / "gaslint" / "gaslint.py"
FIXTURES = ROOT / "tests" / "lint_fixtures"

# slug -> check exercised by <slug>_bad.cpp / <slug>_good.cpp
CASES = {
    "raw_getenv": "gas-raw-getenv",
    "discarded_status": "gas-discarded-status",
    "missing_cancel_poll": "gas-missing-cancel-poll",
    "ref_capture": "gas-ref-capture-in-parallel",
    "std_function_kernel": "gas-std-function-in-kernel",
    "unregistered_metric": "gas-unregistered-metric",
    # Suppression comments must silence an otherwise-positive file.
    "suppressed": "gas-raw-getenv",
}


def run_gaslint(check, fixture):
    return subprocess.run(
        [sys.executable, str(GASLINT), "--check", check,
         "--no-path-filter", str(fixture)],
        capture_output=True, text=True)


def main():
    failures = []
    ran = 0
    for slug, check in sorted(CASES.items()):
        for variant in ("bad", "good"):
            fixture = FIXTURES / f"{slug}_{variant}.cpp"
            if not fixture.is_file():
                if slug == "suppressed" and variant == "bad":
                    continue  # suppression case is negative-only
                failures.append(f"missing fixture {fixture}")
                continue
            ran += 1
            proc = run_gaslint(check, fixture)
            hits = [line for line in proc.stdout.splitlines()
                    if f"[{check}]" in line]
            if variant == "bad":
                if not hits or proc.returncode != 1:
                    failures.append(
                        f"{fixture.name}: expected {check} findings, "
                        f"got rc={proc.returncode}, "
                        f"stdout:\n{proc.stdout}")
            else:
                if hits or proc.returncode != 0:
                    failures.append(
                        f"{fixture.name}: expected clean, "
                        f"got rc={proc.returncode}, "
                        f"stdout:\n{proc.stdout}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        print(f"gaslint fixtures: {len(failures)} failure(s) "
              f"in {ran} runs")
        return 1
    print(f"gaslint fixtures: all {ran} runs behaved as expected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
