#!/usr/bin/env python3
"""gaslint: project-specific static checks for the gas codebase.

Usage:
    gaslint.py [-p BUILD_DIR] [--check NAME]... [--no-path-filter] [PATH]...

PATH arguments are files or directories (searched recursively for
*.cpp / *.h). With no PATHs, the file list comes from BUILD_DIR's
compile_commands.json when present, else from `src bench tests`.
Fixture sources under tests/lint_fixtures/ are skipped unless named
explicitly.

Checks (suppress a line with `// gaslint: allow(check-name)` on the
finding's line or the line above):

  gas-raw-getenv            std::getenv outside src/support/env.*;
                            configuration must go through gas::env so
                            empty/malformed values behave uniformly.
  gas-discarded-status      a call to a function returning Status or
                            StatusOr used as a whole statement; the
                            error is silently dropped. Cast to (void)
                            to discard deliberately.
  gas-missing-cancel-poll   a round loop (trace::Span kRound /
                            metrics kRounds marker) in src/lagraph/ or
                            src/lonestar/ without a cancel_requested()
                            poll; such loops ignore deadlines and
                            cancellation.
  gas-ref-capture-in-parallel
                            a scalar captured by reference and written
                            plainly inside a do_all / do_all_blocked /
                            for_each / on_each lambda; concurrent
                            writers race. Use atomics, per-range
                            locals folded after the loop, or indexed
                            writes to disjoint slots.
  gas-std-function-in-kernel
                            std::function (or <functional>) in
                            src/matrix/ hot kernels; type-erased calls
                            defeat inlining on per-edge paths. The
                            record-time planner (lazy.h,
                            lazy_registry.*) is exempt.
  gas-unregistered-metric   stats::histogram("...") / stats::gauge("...")
                            with a name literal that is not declared in
                            src/stats/registry.h; every series must be
                            registered centrally so exposition
                            consumers can enumerate them.

Implementation note: the environment this project builds in has no
libclang (and no python clang bindings), so the checks run on a C++
token stream produced by the lexer below rather than on a clang AST.
The token grammar each check needs is small and idiomatic to this
codebase; -p/compile_commands.json is used only for file discovery.
Heuristic limits are documented per check.
"""

import argparse
import json
import re
import sys
from pathlib import Path

SUPPRESS_RE = re.compile(r"gaslint:\s*allow\(([a-z0-9-]+|\*)\)")

# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

PUNCTS = sorted(
    [
        "->*", "<<=", ">>=", "...", "::", "->", "++", "--", "<<", ">>",
        "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=",
        "%=", "&=", "|=", "^=", "##",
        "{", "}", "(", ")", "[", "]", ";", ",", ".", "<", ">", "=",
        "+", "-", "*", "/", "%", "&", "|", "^", "!", "~", "?", ":", "#",
    ],
    key=len,
    reverse=True,
)

ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
              "<<=", ">>="}

RAW_PREFIXES = {"R", "u8R", "uR", "UR", "LR"}


class Token:
    __slots__ = ("kind", "text", "line", "value")

    def __init__(self, kind, text, line, value=None):
        self.kind = kind  # 'id' | 'num' | 'str' | 'chr' | 'punct'
        self.text = text
        # String literals keep a placeholder in `text` (so bracket
        # matching never trips over quoted punctuation) and carry their
        # unescaped-as-written contents here for checks that care.
        self.value = value
        self.line = line

    def __repr__(self):
        return f"Token({self.kind!r}, {self.text!r}, {self.line})"


class Lexed:
    """Token stream plus the side tables the checks need."""

    def __init__(self, tokens, suppressions, includes):
        self.tokens = tokens
        self.suppressions = suppressions  # line -> {check-name or '*'}
        self.includes = includes  # [(line, header-name)]


def _lex_raw_string(text, i, line):
    # i points at the opening quote of R"delim( ... )delim".
    j = text.index("(", i)
    delim = text[i + 1:j]
    closer = ")" + delim + '"'
    k = text.find(closer, j)
    if k == -1:
        return len(text), text.count("\n", i), text[j + 1:]
    return k + len(closer), text.count("\n", i, k), text[j + 1:k]


def lex(text):
    tokens = []
    suppressions = {}
    includes = []
    i, n, line = 0, len(text), 1
    bol = True  # only whitespace seen so far on this line

    def note_suppressions(comment, comment_line):
        for m in SUPPRESS_RE.finditer(comment):
            suppressions.setdefault(comment_line, set()).add(m.group(1))

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            bol = True
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "/" and text[i + 1:i + 2] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            note_suppressions(text[i:j], line)
            i = j
            continue
        if c == "/" and text[i + 1:i + 2] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            note_suppressions(text[i:j], line)
            line += text.count("\n", i, j)
            i = j
            continue
        if c == "#" and bol:
            # Preprocessor directive: consume the logical line.
            j = i
            while j < n:
                k = text.find("\n", j)
                k = n if k == -1 else k
                if text[k - 1:k] == "\\":
                    j = k + 1
                else:
                    j = k
                    break
            directive = text[i:j]
            m = re.match(r"#\s*include\s*[<\"]([^>\"]+)[>\"]", directive)
            if m:
                includes.append((line, m.group(1)))
            line += directive.count("\n")
            i = j
            continue
        bol = False
        if c == '"':
            prev = tokens[-1] if tokens else None
            if (prev is not None and prev.kind == "id"
                    and prev.text in RAW_PREFIXES and prev.line == line):
                tokens.pop()
                i, newlines, contents = _lex_raw_string(text, i, line)
                tokens.append(Token("str", "<raw-str>", line, contents))
                line += newlines
                continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            tokens.append(Token("str", "<str>", line, text[i + 1:j]))
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            tokens.append(Token("chr", "<chr>", line))
            i = j + 1
            continue
        if c.isdigit() or (c == "." and text[i + 1:i + 2].isdigit()):
            j = i + 1
            while j < n:
                d = text[j]
                if d.isalnum() or d in "._'":
                    j += 1
                elif d in "+-" and text[j - 1] in "eEpP":
                    j += 1
                else:
                    break
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue
        if c.isalpha() or c == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token("id", text[i:j], line))
            i = j
            continue
        for p in PUNCTS:
            if text.startswith(p, i):
                tokens.append(Token("punct", p, line))
                i += len(p)
                break
        else:
            i += 1  # stray byte; skip
    return Lexed(tokens, suppressions, includes)


# ---------------------------------------------------------------------------
# Token-stream helpers
# ---------------------------------------------------------------------------

OPENERS = {"(": ")", "[": "]", "{": "}"}


def match_bracket(tokens, open_index):
    """Index of the token closing tokens[open_index], or len(tokens)."""
    opener = tokens[open_index].text
    closer = OPENERS[opener]
    depth = 0
    for i in range(open_index, len(tokens)):
        t = tokens[i].text
        if t == opener:
            depth += 1
        elif t == closer:
            depth -= 1
            if depth == 0:
                return i
    return len(tokens)


def skip_template_args(tokens, i):
    """Given tokens[i] == '<', index just past the matching '>'."""
    depth = 0
    while i < len(tokens):
        t = tokens[i].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
        elif t == ">>":
            depth -= 2
        elif t in (";", "{"):
            return i  # not a template argument list after all
        i += 1
        if depth <= 0:
            return i
    return i


class Finding:
    def __init__(self, check, path, line, message):
        self.check = check
        self.path = path
        self.line = line
        self.message = message


# ---------------------------------------------------------------------------
# gas-raw-getenv
# ---------------------------------------------------------------------------

GETENV_NAMES = {"getenv", "secure_getenv", "_wgetenv"}
GETENV_EXEMPT_SUFFIXES = ("src/support/env.cpp", "src/support/env.h")


def check_raw_getenv(path, lexed, ctx, findings):
    if not ctx.path_filter_off and str(path).replace("\\", "/").endswith(
            GETENV_EXEMPT_SUFFIXES):
        return
    for tok in lexed.tokens:
        if tok.kind == "id" and tok.text in GETENV_NAMES:
            findings.append(Finding(
                "gas-raw-getenv", path, tok.line,
                f"raw {tok.text}(); read configuration through the "
                "gas::env helpers (support/env.h)"))


# ---------------------------------------------------------------------------
# gas-discarded-status
# ---------------------------------------------------------------------------

STATUS_TYPES = {"Status", "StatusOr"}


def collect_status_functions(lexed, names):
    """Names of functions declared to return Status/StatusOr by value.

    Pattern: `Status[Or][<args>] name (` not behind `.`/`->` (so member
    accesses don't look like return types). Reference-returning
    accessors (`const Status& status()`) are deliberately not
    collected: discarding a reference getter drops no error.
    """
    tokens = lexed.tokens
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text not in STATUS_TYPES:
            continue
        if i > 0 and tokens[i - 1].text in (".", "->"):
            continue
        j = i + 1
        if j < len(tokens) and tokens[j].text == "<":
            j = skip_template_args(tokens, j)
        if (j + 1 < len(tokens) and tokens[j].kind == "id"
                and tokens[j].text not in STATUS_TYPES
                and tokens[j].text != "operator"
                and tokens[j + 1].text == "("):
            names.add(tokens[j].text)


def check_discarded_status(path, lexed, ctx, findings):
    tokens = lexed.tokens
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text not in ctx.status_functions:
            continue
        if i + 1 >= len(tokens) or tokens[i + 1].text != "(":
            continue
        close = match_bracket(tokens, i + 1)
        if close + 1 >= len(tokens) or tokens[close + 1].text != ";":
            continue  # result consumed (assigned, returned, wrapped)
        # Walk a qualification / member chain back to its head, then
        # require a statement boundary before it: `obj.f();`,
        # `ns::f();`, `f();` are discards; `return f();`, `x = f();`,
        # `(void) f();`, `if (f().ok())` are not.
        start = i
        while (start >= 2 and tokens[start - 1].text in ("::", ".", "->")
               and tokens[start - 2].kind == "id"):
            start -= 2
        if start == 0 or tokens[start - 1].text in (";", "{", "}"):
            findings.append(Finding(
                "gas-discarded-status", path, tok.line,
                f"result of {tok.text}() (Status/StatusOr) is discarded;"
                " handle it, GAS_RETURN_IF_ERROR it, or cast to (void)"))


# ---------------------------------------------------------------------------
# gas-missing-cancel-poll
# ---------------------------------------------------------------------------

ROUND_MARKERS = {"kRound", "kRounds"}
CANCEL_POLL = "cancel_requested"


def find_loops(tokens):
    """[(keyword_index, extent_end_index)] covering header + body."""
    loops = []
    i = 0
    while i < len(tokens):
        t = tokens[i]
        if t.kind == "id" and t.text in ("for", "while"):
            j = i + 1
            if j < len(tokens) and tokens[j].text == "(":
                hdr_close = match_bracket(tokens, j)
                body = hdr_close + 1
                if body < len(tokens) and tokens[body].text == "{":
                    end = match_bracket(tokens, body)
                else:
                    end = body
                    depth = 0
                    while end < len(tokens):
                        txt = tokens[end].text
                        if txt in OPENERS:
                            depth += 1
                        elif txt in (")", "]", "}"):
                            depth -= 1
                        elif txt == ";" and depth == 0:
                            break
                        end += 1
                loops.append((i, end))
        elif (t.kind == "id" and t.text == "do"
              and i + 1 < len(tokens) and tokens[i + 1].text == "{"):
            body_close = match_bracket(tokens, i + 1)
            end = body_close
            if (body_close + 2 < len(tokens)
                    and tokens[body_close + 1].text == "while"
                    and tokens[body_close + 2].text == "("):
                end = match_bracket(tokens, body_close + 2)
            loops.append((i, end))
        i += 1
    return loops


def check_missing_cancel_poll(path, lexed, ctx, findings):
    posix = str(path).replace("\\", "/")
    if not ctx.path_filter_off and not (
            "/lagraph/" in posix or "/lonestar/" in posix
            or posix.startswith(("src/lagraph/", "src/lonestar/"))):
        return
    tokens = lexed.tokens
    loops = find_loops(tokens)
    flagged = set()
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text not in ROUND_MARKERS:
            continue
        # Innermost enclosing loop owns the marker; markers outside any
        # loop (one-shot phases like ls_cc's finish pass) are fine.
        owner = None
        for (start, end) in loops:
            if start < i <= end:
                if owner is None or start > owner[0]:
                    owner = (start, end)
        if owner is None or owner in flagged:
            continue
        start, end = owner
        polled = any(
            tokens[k].kind == "id" and tokens[k].text == CANCEL_POLL
            for k in range(start, end + 1))
        if not polled:
            flagged.add(owner)
            findings.append(Finding(
                "gas-missing-cancel-poll", path, tokens[start].line,
                "round loop never polls cancel_requested(); it will "
                "ignore cancellation and deadlines (poll in the loop "
                "condition, as in `while (work && !cancel_requested())`)"))


# ---------------------------------------------------------------------------
# gas-ref-capture-in-parallel
# ---------------------------------------------------------------------------

PARALLEL_FNS = {"do_all", "do_all_blocked", "for_each", "on_each"}
DECL_INTRODUCERS = {"auto", ">", "&", "*", "::"}

# Writes through the runtime's reducers (runtime/reducers.h) are
# per-thread and merge-on-reduce; they are the sanctioned way to
# accumulate from a parallel loop and must not be flagged.
REDUCER_TYPES = {"Reducer", "Accumulator", "ReduceMax", "ReduceMin",
                 "ReduceOr"}


def reducer_declared_ids(tokens):
    """Identifiers declared with a reducer type anywhere in the file."""
    ids = set()
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text not in REDUCER_TYPES:
            continue
        j = i + 1
        if j < len(tokens) and tokens[j].text == "<":
            j = skip_template_args(tokens, j)
        if j < len(tokens) and tokens[j].kind == "id":
            ids.add(tokens[j].text)
    return ids


def parse_capture_list(tokens, open_bracket):
    """(default_ref, ref_ids, value_ids) of a lambda introducer."""
    close = match_bracket(tokens, open_bracket)
    default_ref = False
    ref_ids = set()
    value_ids = set()
    k = open_bracket + 1
    while k < close:
        t = tokens[k]
        if t.text == "&":
            nxt = tokens[k + 1] if k + 1 < close else None
            if nxt is not None and nxt.kind == "id":
                ref_ids.add(nxt.text)
                k += 2
            else:
                default_ref = True
                k += 1
        elif t.kind == "id" and t.text != "this":
            value_ids.add(t.text)
            k += 1
        else:
            k += 1
        # Skip init-capture initializers: `[&x = y]` aliases y by ref.
        if k < close and tokens[k].text == "=":
            while k < close and tokens[k].text != ",":
                k += 1
        if k < close and tokens[k].text == ",":
            k += 1
    return default_ref, ref_ids, value_ids, close


def local_declarations(tokens, begin, end):
    """Over-approximate set of identifiers declared in [begin, end).

    An id counts as declared when preceded by a type-ish token (another
    id, `auto`, `>`, `&`, `*`, `::`) and followed by `=`, `;`, `{`,
    `,`, `)`, or `:` (range-for). Over-approximation only hides
    findings, never invents them.
    """
    declared = set()
    for k in range(begin + 1, end):
        t = tokens[k]
        if t.kind != "id":
            continue
        prev = tokens[k - 1]
        nxt = tokens[k + 1] if k + 1 < end else None
        if nxt is None:
            continue
        prev_ok = (prev.kind == "id" and prev.text not in ("return",))
        prev_ok = prev_ok or prev.text in DECL_INTRODUCERS
        if prev_ok and nxt.text in ("=", ";", "{", ",", ")", ":"):
            declared.add(t.text)
    return declared


def chain_base(tokens, index):
    """Head identifier of a `a.b->c` chain ending at tokens[index]."""
    p = index
    while (p >= 2 and tokens[p - 1].text in (".", "->")
           and tokens[p - 2].kind == "id"):
        p -= 2
    if p >= 1 and tokens[p - 1].text in (".", "->"):
        return None  # chain rooted in a call/deref; cannot resolve
    return tokens[p]


def scan_lambda_writes(path, tokens, body_begin, body_end, default_ref,
                       ref_ids, exempt, findings):
    """Flag plain writes to by-ref captures inside [body_begin, body_end)."""
    declared = local_declarations(tokens, body_begin, body_end) | exempt
    reported = set()

    def report(base_tok, how):
        target = base_tok.text
        if target in declared or target == "this":
            return
        if not default_ref and target not in ref_ids:
            return
        key = (target, base_tok.line)
        if key in reported:
            return
        reported.add(key)
        findings.append(Finding(
            "gas-ref-capture-in-parallel", path, base_tok.line,
            f"'{target}' is captured by reference and {how} inside a "
            "parallel loop body; concurrent writers race. Use an "
            "atomic, a per-range local folded after the loop, or an "
            "indexed write to a disjoint slot"))

    for k in range(body_begin + 1, body_end):
        t = tokens[k]
        if t.text in ("++", "--") and t.kind == "punct":
            nxt = tokens[k + 1] if k + 1 < body_end else None
            prev = tokens[k - 1]
            if (nxt is not None and nxt.kind == "id"
                    and prev.kind != "id" and prev.text not in (")", "]")):
                after = tokens[k + 2] if k + 2 < body_end else None
                if after is not None and after.text in (".", "->", "["):
                    continue  # ++it->second etc.: container mutation
                report(nxt, "incremented")
            elif prev.kind == "id":
                # Postfix: `x++`, `a.b++`. Indexed (`v[i]++`) never
                # matches since prev is then `]`.
                base = chain_base(tokens, k - 1)
                if base is not None:
                    report(base, "incremented")
        elif t.text in ASSIGN_OPS and t.kind == "punct":
            lhs = tokens[k - 1]
            if lhs.kind != "id":
                continue  # indexed write `v[i] = x`: disjoint-slot idiom
            base = chain_base(tokens, k - 1)
            if base is None:
                continue
            report(base, "assigned")


def check_ref_capture_in_parallel(path, lexed, ctx, findings):
    tokens = lexed.tokens
    reducers = reducer_declared_ids(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text not in PARALLEL_FNS:
            continue
        if i + 1 >= len(tokens) or tokens[i + 1].text != "(":
            continue
        call_close = match_bracket(tokens, i + 1)
        k = i + 2
        while k < call_close:
            if (tokens[k].text == "["
                    and tokens[k - 1].text in ("(", ",")):
                default_ref, ref_ids, _, cap_close = \
                    parse_capture_list(tokens, k)
                # Parameter list (optional) then body.
                p = cap_close + 1
                exempt = set(reducers)
                if p < call_close and tokens[p].text == "(":
                    param_close = match_bracket(tokens, p)
                    exempt |= {t.text for t in tokens[p:param_close]
                               if t.kind == "id"}
                    p = param_close + 1
                while p < call_close and tokens[p].text != "{":
                    p += 1  # skip mutable / -> ret
                if p < call_close:
                    body_close = match_bracket(tokens, p)
                    if default_ref or ref_ids:
                        scan_lambda_writes(path, tokens, p, body_close,
                                           default_ref, ref_ids, exempt,
                                           findings)
                    k = body_close
            k += 1


# ---------------------------------------------------------------------------
# gas-std-function-in-kernel
# ---------------------------------------------------------------------------

KERNEL_EXEMPT = ("lazy.h", "lazy_registry.h", "lazy_registry.cpp")


def check_std_function_in_kernel(path, lexed, ctx, findings):
    posix = str(path).replace("\\", "/")
    if not ctx.path_filter_off:
        if "/matrix/" not in posix and not posix.startswith("src/matrix/"):
            return
        if posix.endswith(KERNEL_EXEMPT):
            return
    for (line, header) in lexed.includes:
        if header == "functional":
            findings.append(Finding(
                "gas-std-function-in-kernel", path, line,
                "<functional> included in a matrix kernel header; "
                "type-erased callables belong in the lazy planner "
                "(lazy.h), kernels take template callables"))
    tokens = lexed.tokens
    for i, tok in enumerate(tokens):
        if (tok.kind == "id" and tok.text == "function" and i >= 2
                and tokens[i - 1].text == "::"
                and tokens[i - 2].text == "std"):
            findings.append(Finding(
                "gas-std-function-in-kernel", path, tok.line,
                "std::function in a matrix kernel; template on the "
                "callable instead (type-erased calls defeat inlining "
                "on per-edge paths)"))


# ---------------------------------------------------------------------------
# gas-unregistered-metric
# ---------------------------------------------------------------------------

METRIC_REGISTRY = Path(__file__).resolve().parents[2] / "src" / "stats" / \
    "registry.h"
METRIC_FACTORIES = {"histogram", "gauge"}


def registered_metric_names(ctx):
    """Every string literal in src/stats/registry.h (cached).

    The registry header defines one `constexpr const char* kFoo =
    "name";` per series and nothing else carries string literals, so
    collecting all literals is exact. A missing registry (stale
    checkout) disables the check rather than flagging everything.
    """
    if ctx.metric_names is None:
        ctx.metric_names = set()
        try:
            text = METRIC_REGISTRY.read_text(encoding="utf-8",
                                             errors="replace")
        except OSError:
            return ctx.metric_names
        for tok in lex(text).tokens:
            if tok.kind == "str" and tok.value:
                ctx.metric_names.add(tok.value)
    return ctx.metric_names


def check_unregistered_metric(path, lexed, ctx, findings):
    """`stats::histogram("...")` / `stats::gauge("...")` literals must
    name a series declared in src/stats/registry.h.

    Heuristic limits: only literal arguments are checked (calls through
    stats::names:: constants or variables are already registry-backed
    or dynamic by design), and only calls qualified with `stats::` are
    matched so unrelated histogram()/gauge() helpers never trip it.
    """
    names = registered_metric_names(ctx)
    if not names:
        return
    tokens = lexed.tokens
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text not in METRIC_FACTORIES:
            continue
        if i < 2 or tokens[i - 1].text != "::" or \
                tokens[i - 2].text != "stats":
            continue
        if i + 2 >= len(tokens) or tokens[i + 1].text != "(":
            continue
        arg = tokens[i + 2]
        if arg.kind != "str":
            continue
        if arg.value not in names:
            findings.append(Finding(
                "gas-unregistered-metric", path, arg.line,
                f'stats::{tok.text}("{arg.value}") names a series not '
                "declared in src/stats/registry.h; add a constant "
                "there (the registry is what exposition consumers and "
                "dashboards enumerate)"))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

CHECKS = {
    "gas-raw-getenv": check_raw_getenv,
    "gas-discarded-status": check_discarded_status,
    "gas-missing-cancel-poll": check_missing_cancel_poll,
    "gas-ref-capture-in-parallel": check_ref_capture_in_parallel,
    "gas-std-function-in-kernel": check_std_function_in_kernel,
    "gas-unregistered-metric": check_unregistered_metric,
}


class Context:
    def __init__(self, path_filter_off):
        self.path_filter_off = path_filter_off
        self.status_functions = set()
        self.metric_names = None


def discover(paths, build_dir):
    files = []
    if not paths:
        cc = Path(build_dir or "build") / "compile_commands.json"
        if cc.is_file():
            entries = json.loads(cc.read_text())
            files = sorted({Path(e["file"]) for e in entries})
            # compile_commands lists only TUs; headers carry kernels
            # and annotations, so widen to the TU's directories.
            dirs = sorted({f.parent for f in files})
            for d in dirs:
                files.extend(sorted(d.glob("*.h")))
            paths = []
        else:
            paths = ["src", "bench", "tests"]
    for raw in paths:
        p = Path(raw)
        explicit_fixture = "lint_fixtures" in p.parts
        if p.is_dir():
            for f in sorted(p.rglob("*")):
                if f.suffix not in (".cpp", ".h"):
                    continue
                # Fixtures are reachable only by naming them (or their
                # directory) directly, never from a tree-wide run.
                if "lint_fixtures" in f.parts and not explicit_fixture:
                    continue
                files.append(f)
        elif p.is_file():
            files.append(p)
        else:
            print(f"gaslint: no such path: {raw}", file=sys.stderr)
            return None
    out = []
    seen = set()
    for f in files:
        key = str(f)
        if key not in seen:
            seen.add(key)
            out.append(f)
    return out


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="gaslint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", help="files or directories")
    ap.add_argument("-p", "--build-dir", default=None,
                    help="build dir holding compile_commands.json "
                         "(file discovery fallback)")
    ap.add_argument("--check", action="append", default=None,
                    help="run only this check (repeatable)")
    ap.add_argument("--no-path-filter", action="store_true",
                    help="ignore per-check path scoping (fixture runs)")
    ap.add_argument("--list-checks", action="store_true")
    args = ap.parse_args(argv)

    if args.list_checks:
        for name in sorted(CHECKS):
            print(name)
        return 0

    selected = args.check or sorted(CHECKS)
    for name in selected:
        if name not in CHECKS:
            print(f"gaslint: unknown check '{name}'", file=sys.stderr)
            return 2

    files = discover(args.paths, args.build_dir)
    if files is None:
        return 2

    ctx = Context(args.no_path_filter)
    lexed_files = []
    for f in files:
        try:
            text = f.read_text(encoding="utf-8", errors="replace")
        except OSError as err:
            print(f"gaslint: cannot read {f}: {err}", file=sys.stderr)
            return 2
        lexed = lex(text)
        lexed_files.append((f, lexed))
        collect_status_functions(lexed, ctx.status_functions)

    findings = []
    for (f, lexed) in lexed_files:
        per_file = []
        for name in selected:
            CHECKS[name](f, lexed, ctx, per_file)
        for finding in per_file:
            allowed = (lexed.suppressions.get(finding.line, set())
                       | lexed.suppressions.get(finding.line - 1, set()))
            if finding.check in allowed or "*" in allowed:
                continue
            findings.append(finding)

    findings.sort(key=lambda f: (str(f.path), f.line, f.check))
    for f in findings:
        print(f"{f.path}:{f.line}: [{f.check}] {f.message}")
    if findings:
        print(f"gaslint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
