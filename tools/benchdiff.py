#!/usr/bin/env python3
"""benchdiff: compare two BENCH_*.json files and gate on regressions.

Usage:
    benchdiff.py BASELINE.json CANDIDATE.json [options]

Both files hold the repo's standard bench records: a JSON array of
objects keyed by (app, graph, api) with a median_ms number (see
bench/bench_common.h JsonRecord). The comparator:

  - matches cells by (app, graph, api) key;
  - flags a cell as a regression when the candidate median exceeds
    baseline * --band plus --floor-ms (the absolute floor absorbs
    scheduling noise on sub-millisecond smoke cells, where a ratio
    band alone would be pure jitter);
  - flags cells missing from the candidate (a silently dropped bench
    cell is a regression of coverage, not just speed) unless
    --allow-missing;
  - additionally gates the aggregate: sum of candidate medians must
    stay within --aggregate-band of the baseline sum. Per-cell noise
    averages out in the aggregate, so this band can be tighter.

Exit status: 0 clean, 1 regression(s), 2 usage/IO error. Dependency
free (stdlib json only) so it runs anywhere CI has a python3.

Typical CI gate (1.5x per cell vs the checked-in baseline):
    python3 tools/benchdiff.py results/baseline/BENCH_table2.json \
        build/bench/results/BENCH_table2.json --band 1.5
"""

import argparse
import json
import sys


def load_cells(path):
    try:
        with open(path) as f:
            records = json.load(f)
    except (OSError, ValueError) as err:
        print(f"benchdiff: cannot read {path}: {err}", file=sys.stderr)
        return None
    cells = {}
    for r in records:
        try:
            key = (r["app"], r["graph"], r["api"])
            cells[key] = float(r["median_ms"])
        except (KeyError, TypeError, ValueError) as err:
            print(f"benchdiff: malformed record in {path}: {r!r} ({err})",
                  file=sys.stderr)
            return None
    return cells


def fmt_key(key):
    return "/".join(key)


def main(argv=None):
    ap = argparse.ArgumentParser(prog="benchdiff", description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline", help="baseline BENCH_*.json")
    ap.add_argument("candidate", help="candidate BENCH_*.json")
    ap.add_argument("--band", type=float, default=1.5,
                    help="per-cell noise band: candidate must stay "
                         "within baseline * BAND (default 1.5)")
    ap.add_argument("--floor-ms", type=float, default=0.25,
                    help="absolute per-cell allowance in ms added on "
                         "top of the band (default 0.25; absorbs "
                         "jitter on sub-ms smoke cells)")
    ap.add_argument("--aggregate-band", type=float, default=None,
                    help="also require sum(candidate) <= "
                         "sum(baseline) * AGGREGATE_BAND "
                         "(default: same as --band)")
    ap.add_argument("--allow-missing", action="store_true",
                    help="do not fail when the candidate lacks cells "
                         "the baseline has")
    ap.add_argument("--quiet", action="store_true",
                    help="print regressions only, no per-cell table")
    args = ap.parse_args(argv)

    base = load_cells(args.baseline)
    cand = load_cells(args.candidate)
    if base is None or cand is None:
        return 2
    if not base:
        print(f"benchdiff: baseline {args.baseline} holds no cells",
              file=sys.stderr)
        return 2

    aggregate_band = (args.aggregate_band
                      if args.aggregate_band is not None else args.band)
    regressions = []
    improvements = 0
    compared = 0

    for key in sorted(base):
        b = base[key]
        if key not in cand:
            if not args.allow_missing:
                regressions.append(f"{fmt_key(key)}: missing from "
                                   f"candidate (baseline {b:.3f} ms)")
            continue
        c = cand[key]
        compared += 1
        limit = b * args.band + args.floor_ms
        status = "ok"
        if c > limit:
            status = "REGRESSED"
            regressions.append(
                f"{fmt_key(key)}: {c:.3f} ms vs baseline {b:.3f} ms "
                f"(limit {limit:.3f} = x{args.band} + {args.floor_ms} ms)")
        elif c < b:
            improvements += 1
        if not args.quiet:
            print(f"  {fmt_key(key):50s} {b:10.3f} -> {c:10.3f} ms  "
                  f"{status}")

    new_cells = sorted(set(cand) - set(base))
    for key in new_cells:
        if not args.quiet:
            print(f"  {fmt_key(key):50s} {'-':>10s} -> "
                  f"{cand[key]:10.3f} ms  new")

    total_base = sum(base[k] for k in base if k in cand)
    total_cand = sum(cand[k] for k in base if k in cand)
    if total_base > 0 and total_cand > total_base * aggregate_band:
        regressions.append(
            f"aggregate: {total_cand:.3f} ms vs baseline "
            f"{total_base:.3f} ms (band x{aggregate_band})")

    print(f"benchdiff: {compared} cells compared, {improvements} "
          f"improved, {len(new_cells)} new, {len(regressions)} "
          f"regression(s); aggregate {total_base:.2f} -> "
          f"{total_cand:.2f} ms")
    for r in regressions:
        print(f"REGRESSION: {r}")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
