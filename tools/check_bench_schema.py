#!/usr/bin/env python3
"""Validate the schema of the repo's BENCH_*.json bench outputs.

Every bench binary emits a JSON array of cell records through
bench::write_json_records (bench/bench_common.h). This checker pins
the shared contract so downstream tooling (tools/benchdiff.py, plot
scripts) can rely on it:

  - the file parses and is a non-empty array of objects;
  - every record has string app/graph/api, integer threads >= 1, and
    a finite non-negative median_ms number;
  - "extra", when present, is a flat object of string keys to string
    values.

Usage:
    check_bench_schema.py FILE.json [FILE.json ...]

Exit status: 0 all files valid, 1 any violation. Dependency free.
"""

import json
import math
import sys


def check_record(path, i, r, errors):
    if not isinstance(r, dict):
        errors.append(f"{path}[{i}]: record is not an object")
        return
    for field in ("app", "graph", "api"):
        if not isinstance(r.get(field), str) or not r[field]:
            errors.append(f"{path}[{i}]: missing/empty string '{field}'")
    threads = r.get("threads")
    if not isinstance(threads, int) or isinstance(threads, bool) or \
            threads < 1:
        errors.append(f"{path}[{i}]: 'threads' must be an int >= 1, "
                      f"got {threads!r}")
    median = r.get("median_ms")
    if not isinstance(median, (int, float)) or isinstance(median, bool) \
            or not math.isfinite(median) or median < 0:
        errors.append(f"{path}[{i}]: 'median_ms' must be a finite "
                      f"non-negative number, got {median!r}")
    extra = r.get("extra")
    if extra is not None:
        if not isinstance(extra, dict):
            errors.append(f"{path}[{i}]: 'extra' must be an object")
        else:
            for k, v in extra.items():
                if not isinstance(v, str):
                    errors.append(f"{path}[{i}]: extra[{k!r}] must be "
                                  f"a string, got {type(v).__name__}")


def check_file(path, errors):
    try:
        with open(path) as f:
            records = json.load(f)
    except (OSError, ValueError) as err:
        errors.append(f"{path}: cannot read: {err}")
        return 0
    if not isinstance(records, list):
        errors.append(f"{path}: top level is not an array")
        return 0
    if not records:
        errors.append(f"{path}: empty record array")
        return 0
    for i, r in enumerate(records):
        check_record(path, i, r, errors)
    return len(records)


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 1
    errors = []
    total = 0
    for path in argv[1:]:
        n = check_file(path, errors)
        total += n
        if not errors:
            print(f"  {path}: {n} records ok")
    for e in errors:
        print(f"SCHEMA ERROR: {e}")
    print(f"check_bench_schema: {len(argv) - 1} file(s), {total} "
          f"records, {len(errors)} error(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
