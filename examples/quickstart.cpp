/**
 * @file
 * Quickstart: build a graph, run the same problem through both APIs.
 *
 * This walks the two programming models the study compares:
 *  1. the graph API (Lonestar style): worklists and a fused operator;
 *  2. the matrix API (GraphBLAS style): vxm over a semiring with masks.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "graph/builder.h"
#include "graph/generators.h"
#include "lagraph/lagraph.h"
#include "lonestar/lonestar.h"
#include "runtime/thread_pool.h"
#include "support/timer.h"

int
main()
{
    using namespace gas;

    // A small power-law graph: 2^12 vertices, ~16 edges per vertex.
    graph::EdgeList list = graph::rmat(12, 16, /*seed=*/1);
    const graph::Graph graph = graph::Graph::from_edge_list(list, false);
    std::printf("graph: %u vertices, %llu edges\n", graph.num_nodes(),
                static_cast<unsigned long long>(graph.num_edges()));

    const graph::Node source = 0;

    // --- Graph API: Lonestar-style bfs (Algorithm 1 of the paper) ---
    Timer graph_timer;
    graph_timer.start();
    const std::vector<uint32_t> levels = ls::bfs(graph, source);
    graph_timer.stop();

    // --- Matrix API: LAGraph-style bfs (Algorithm 2 of the paper) ---
    const auto A = grb::Matrix<uint8_t>::from_graph(graph, false);
    Timer matrix_timer;
    matrix_timer.start();
    const grb::Vector<uint32_t> dist = la::bfs(A, source);
    matrix_timer.stop();
    const std::vector<uint32_t> matrix_levels = la::bfs_levels_from(dist);

    // Both compute the same answer.
    uint64_t reached = 0;
    uint32_t max_level = 0;
    for (std::size_t v = 0; v < levels.size(); ++v) {
        if (levels[v] != ls::kUnreachedLevel) {
            ++reached;
            max_level = std::max(max_level, levels[v]);
        }
        if (levels[v] != matrix_levels[v]) {
            std::printf("MISMATCH at vertex %zu!\n", v);
            return 1;
        }
    }
    std::printf("bfs from %u: reached %llu vertices, max level %u\n",
                source, static_cast<unsigned long long>(reached),
                max_level);
    std::printf("graph API:  %.4f s\n", graph_timer.seconds());
    std::printf("matrix API: %.4f s\n", matrix_timer.seconds());
    std::printf("identical results from both APIs.\n");
    return 0;
}
