/**
 * @file
 * Social-network analysis: influence ranking (pagerank), community
 * structure (connected components), and cohesion (triangle count) on a
 * synthetic power-law social network, using the public APIs the way
 * the paper's introduction motivates.
 */

#include <algorithm>
#include <cstdio>

#include "graph/builder.h"
#include "graph/generators.h"
#include "lonestar/lonestar.h"
#include "support/timer.h"

int
main()
{
    using namespace gas;

    // A follower network: power-law, directed.
    graph::EdgeList list =
        graph::rmat(14, 24, /*seed=*/40, {0.5, 0.25, 0.15, 0.10});
    const graph::Graph follows = graph::Graph::from_edge_list(list, false);

    // The undirected friendship view for components and triangles.
    graph::EdgeList sym = list;
    graph::symmetrize(sym);
    graph::Graph friends = graph::Graph::from_edge_list(sym, false);
    friends.sort_adjacencies();

    std::printf("social network: %u users, %llu follow edges\n",
                follows.num_nodes(),
                static_cast<unsigned long long>(follows.num_edges()));

    // --- Influence: pagerank top-5 ---
    Timer timer;
    timer.start();
    const auto transpose = graph::transpose(follows);
    const auto ranks = ls::pagerank(follows, transpose, 0.85, 20);
    timer.stop();
    std::vector<graph::Node> order(follows.num_nodes());
    for (graph::Node v = 0; v < follows.num_nodes(); ++v) {
        order[v] = v;
    }
    std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                      [&](graph::Node a, graph::Node b) {
                          return ranks[a] > ranks[b];
                      });
    std::printf("top influencers (pagerank, %.3f s):\n", timer.seconds());
    for (int i = 0; i < 5; ++i) {
        std::printf("  user %-8u rank %.6f  followers %llu\n", order[i],
                    ranks[order[i]],
                    static_cast<unsigned long long>(
                        transpose.out_degree(order[i])));
    }

    // --- Communities: connected components via Afforest ---
    timer.reset();
    timer.start();
    const auto components = ls::cc_afforest(friends);
    timer.stop();
    std::vector<graph::Node> sorted_components = components;
    std::sort(sorted_components.begin(), sorted_components.end());
    const auto distinct = std::unique(sorted_components.begin(),
                                      sorted_components.end()) -
        sorted_components.begin();
    std::printf("communities: %lld connected components (%.3f s)\n",
                static_cast<long long>(distinct), timer.seconds());

    // --- Cohesion: triangle count ---
    timer.reset();
    timer.start();
    const auto forward = ls::build_forward_graph(friends);
    const uint64_t triangles = ls::tc(forward);
    timer.stop();
    std::printf("cohesion: %llu friendship triangles (%.3f s)\n",
                static_cast<unsigned long long>(triangles),
                timer.seconds());

    // --- Brokers: betweenness centrality (the paper's introductory
    //     motivation: finding key actors in a network) ---
    timer.reset();
    timer.start();
    std::vector<graph::Node> sources;
    for (graph::Node s = 0; s < follows.num_nodes();
         s += follows.num_nodes() / 16) {
        sources.push_back(s);
    }
    const auto brokers = ls::betweenness(friends, sources);
    timer.stop();
    std::vector<graph::Node> broker_order(follows.num_nodes());
    for (graph::Node v = 0; v < follows.num_nodes(); ++v) {
        broker_order[v] = v;
    }
    std::partial_sort(broker_order.begin(), broker_order.begin() + 3,
                      broker_order.end(),
                      [&](graph::Node a, graph::Node b) {
                          return brokers[a] > brokers[b];
                      });
    std::printf("key brokers (betweenness from %zu sources, %.3f s):\n",
                sources.size(), timer.seconds());
    for (int i = 0; i < 3; ++i) {
        std::printf("  user %-8u dependency %.1f\n", broker_order[i],
                    brokers[broker_order[i]]);
    }
    return 0;
}
