/**
 * @file
 * The matrix API as a standalone library: expressing different graph
 * questions as semiring products on one adjacency matrix.
 *
 * This example is the "separation of concerns" pitch of the
 * GraphBLAS approach: the same vxm/mxv kernels answer reachability,
 * shortest-distance, and counting questions just by swapping the
 * semiring — no per-problem kernel code.
 */

#include <cstdio>

#include "graph/builder.h"
#include "graph/generators.h"
#include "matrix/grb.h"

int
main()
{
    using namespace gas;
    using grb::Index;

    // The karate-club graph, weighted uniformly 1.
    graph::EdgeList list = graph::karate_club();
    graph::Graph g = graph::Graph::from_edge_list(list, false);
    g.sort_adjacencies();
    const auto A = grb::Matrix<uint64_t>::from_graph(g, false);
    std::printf("karate club: %u members, %llu ties\n", A.nrows(),
                static_cast<unsigned long long>(A.nvals()));

    // 1. Reachability in exactly two hops from member 0: LOR.LAND
    //    (boolean semiring), two vxm applications.
    {
        grb::Vector<uint64_t> frontier(A.nrows());
        frontier.set_element(0, 1);
        grb::Vector<uint64_t> hop1;
        grb::vxm<grb::PlusPair<uint64_t>>(hop1, grb::kDefaultDesc,
                                          frontier, A);
        grb::Vector<uint64_t> hop2;
        grb::vxm<grb::PlusPair<uint64_t>>(hop2, grb::kDefaultDesc, hop1,
                                          A);
        std::printf("members within 1 hop of member 0: %llu\n",
                    static_cast<unsigned long long>(hop1.nvals()));
        std::printf("members within 2 hops of member 0: %llu\n",
                    static_cast<unsigned long long>(hop2.nvals()));
    }

    // 2. Fewest-ties distance: MIN.PLUS (tropical semiring) iterated to
    //    fixpoint is Bellman-Ford.
    {
        grb::Vector<uint64_t> dist(A.nrows());
        dist.fill(std::numeric_limits<uint64_t>::max());
        dist.set_element(0, 0);
        for (Index round = 0; round < A.nrows(); ++round) {
            grb::Vector<uint64_t> relaxed;
            grb::vxm<grb::MinPlus<uint64_t>>(relaxed, grb::kDefaultDesc,
                                             dist, A);
            grb::Vector<uint64_t> next;
            grb::ewise_add(next, dist, relaxed,
                           [](uint64_t a, uint64_t b) {
                               return std::min(a, b);
                           });
            if (grb::vectors_equal(next, dist)) {
                break;
            }
            dist = std::move(next);
        }
        const uint64_t eccentricity =
            grb::reduce<grb::MaxMonoid<uint64_t>>(dist);
        std::printf("eccentricity of member 0: %llu hops\n",
                    static_cast<unsigned long long>(eccentricity));
    }

    // 3. Triangles through each tie: PLUS.PAIR masked SpGEMM (the
    //    SandiaDot kernel) counts common neighbors per edge.
    {
        const auto L = grb::tril(A);
        grb::Matrix<uint64_t> C;
        grb::mxm_masked_dot<grb::PlusPair<uint64_t>>(C, L, L, L);
        const uint64_t triangles =
            grb::reduce_matrix<grb::PlusMonoid<uint64_t>>(C);
        std::printf("triangles in the club: %llu (known value: 45)\n",
                    static_cast<unsigned long long>(triangles));
    }

    // 4. Degree statistics: row reduction.
    {
        const auto degrees = grb::row_counts(A);
        const uint64_t busiest =
            grb::reduce<grb::MaxMonoid<uint64_t>>(degrees);
        std::printf("largest number of ties per member: %llu\n",
                    static_cast<unsigned long long>(busiest));
    }
    return 0;
}
