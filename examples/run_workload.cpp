/**
 * @file
 * Command-line workload driver: run any (app, system, graph) cell of
 * the study from the shell.
 *
 *   run_workload <app> <system> <graph> [scale]
 *
 *   app:    bfs | cc | ktruss | pr | sssp | tc
 *   system: ss | gb | ls
 *   graph:  a suite graph name (road-USA, rmat22, uk07, ...)
 *   scale:  suite size multiplier (default 1.0)
 *
 * Prints the runtime, verification status, software counters, and peak
 * tracked memory for the cell — the same numbers the table benches
 * aggregate.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/runner.h"
#include "core/suite.h"
#include "support/format.h"

namespace {

using namespace gas;

int
usage(const char* binary)
{
    std::fprintf(stderr,
                 "usage: %s <bfs|cc|ktruss|pr|sssp|tc> <ss|gb|ls> "
                 "<graph> [scale]\n  graphs: ",
                 binary);
    for (const auto& name : core::suite_graph_names()) {
        std::fprintf(stderr, "%s ", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
}

bool
parse_app(const char* text, core::App& app)
{
    const std::pair<const char*, core::App> apps[] = {
        {"bfs", core::App::kBfs},       {"cc", core::App::kCc},
        {"ktruss", core::App::kKtruss}, {"pr", core::App::kPr},
        {"sssp", core::App::kSssp},     {"tc", core::App::kTc},
    };
    for (const auto& [name, value] : apps) {
        if (std::strcmp(text, name) == 0) {
            app = value;
            return true;
        }
    }
    return false;
}

bool
parse_system(const char* text, core::System& system)
{
    if (std::strcmp(text, "ss") == 0) {
        system = core::System::kSuiteSparse;
        return true;
    }
    if (std::strcmp(text, "gb") == 0) {
        system = core::System::kGaloisBlas;
        return true;
    }
    if (std::strcmp(text, "ls") == 0) {
        system = core::System::kLonestar;
        return true;
    }
    return false;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 4 || argc > 5) {
        return usage(argv[0]);
    }
    core::App app;
    core::System system;
    if (!parse_app(argv[1], app) || !parse_system(argv[2], system)) {
        return usage(argv[0]);
    }
    const std::string graph_name = argv[3];
    bool known = false;
    for (const auto& name : core::suite_graph_names()) {
        known |= name == graph_name;
    }
    if (!known) {
        return usage(argv[0]);
    }
    const double scale = argc == 5 ? std::atof(argv[4]) : 1.0;
    if (scale <= 0.0) {
        return usage(argv[0]);
    }

    const unsigned threads = core::configure_threads_from_env();
    std::printf("building %s (scale %.2f)...\n", graph_name.c_str(),
                scale);
    const auto input = core::build_suite_graph(graph_name, scale);
    std::printf("  %u vertices, %llu edges, source %u, threads %u\n",
                input.directed.num_nodes(),
                static_cast<unsigned long long>(
                    input.directed.num_edges()),
                input.source, threads);

    core::RunConfig config;
    config.repetitions = 3;
    const auto result = core::run_cell(app, system, input, config);

    std::printf("\n%s on %s (%s):\n", core::app_name(app),
                graph_name.c_str(), core::system_name(system));
    std::printf("  time         %s (avg of %u reps)\n",
                human_seconds(result.seconds).c_str(),
                config.repetitions);
    std::printf("  verified     %s\n",
                result.correct ? "correct" : "MISMATCH vs oracle");
    std::printf("  peak memory  %s\n",
                human_bytes(result.peak_bytes).c_str());
    std::printf("  counters     %s\n",
                result.counters.to_string().c_str());
    return result.correct ? 0 : 1;
}
