/**
 * @file
 * Road-network navigation: single-source shortest paths on a grid road
 * network, contrasting asynchronous delta-stepping (graph API) with
 * bulk-synchronous delta-stepping (matrix API).
 *
 * This is the scenario behind the paper's most dramatic result: on
 * high-diameter road networks the asynchronous graph-API sssp is
 * orders of magnitude faster because the bulk API must run a full
 * round per relaxation wave.
 */

#include <cstdio>

#include "graph/builder.h"
#include "graph/generators.h"
#include "lagraph/lagraph.h"
#include "lonestar/lonestar.h"
#include "support/timer.h"
#include "verify/reference.h"

int
main()
{
    using namespace gas;

    // A 192 x 192 city grid with random travel times on each segment.
    graph::EdgeList list = graph::grid2d(192, 192, /*seed=*/7);
    graph::randomize_weights(list, /*seed=*/99, 1, 255);
    const graph::Graph roads = graph::Graph::from_edge_list(list, true);
    std::printf("road network: %u intersections, %llu road segments\n",
                roads.num_nodes(),
                static_cast<unsigned long long>(roads.num_edges()));

    const graph::Node depot = 0; // top-left corner
    constexpr uint64_t kDelta = 1024;

    // Asynchronous delta-stepping on the graph API.
    Timer async_timer;
    async_timer.start();
    ls::SsspOptions options;
    options.delta = kDelta;
    const auto async_dist = ls::sssp(roads, depot, options);
    async_timer.stop();

    // Bulk-synchronous delta-stepping on the matrix API.
    const auto A = grb::Matrix<uint64_t>::from_graph(roads, true);
    Timer bulk_timer;
    bulk_timer.start();
    const auto bulk_dist = la::sssp_delta(A, depot, kDelta);
    bulk_timer.stop();

    // Cross-check both against Dijkstra.
    const auto oracle = verify::dijkstra(roads, depot);
    if (async_dist != oracle || bulk_dist != oracle) {
        std::printf("ERROR: distance mismatch\n");
        return 1;
    }

    // A few queries: travel time to the far corners.
    const graph::Node far_corner = roads.num_nodes() - 1;
    const graph::Node mid = roads.num_nodes() / 2;
    std::printf("travel time depot -> far corner: %llu\n",
                static_cast<unsigned long long>(async_dist[far_corner]));
    std::printf("travel time depot -> midtown:    %llu\n",
                static_cast<unsigned long long>(async_dist[mid]));

    std::printf("asynchronous (graph API) sssp: %.4f s\n",
                async_timer.seconds());
    std::printf("bulk-synchronous (matrix API): %.4f s\n",
                bulk_timer.seconds());
    std::printf("asynchrony advantage: %.1fx\n",
                bulk_timer.seconds() / async_timer.seconds());
    return 0;
}
