
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/runner.cpp" "src/CMakeFiles/gas.dir/core/runner.cpp.o" "gcc" "src/CMakeFiles/gas.dir/core/runner.cpp.o.d"
  "/root/repo/src/core/suite.cpp" "src/CMakeFiles/gas.dir/core/suite.cpp.o" "gcc" "src/CMakeFiles/gas.dir/core/suite.cpp.o.d"
  "/root/repo/src/core/table.cpp" "src/CMakeFiles/gas.dir/core/table.cpp.o" "gcc" "src/CMakeFiles/gas.dir/core/table.cpp.o.d"
  "/root/repo/src/graph/builder.cpp" "src/CMakeFiles/gas.dir/graph/builder.cpp.o" "gcc" "src/CMakeFiles/gas.dir/graph/builder.cpp.o.d"
  "/root/repo/src/graph/csr_graph.cpp" "src/CMakeFiles/gas.dir/graph/csr_graph.cpp.o" "gcc" "src/CMakeFiles/gas.dir/graph/csr_graph.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/gas.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/gas.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/gas.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/gas.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/properties.cpp" "src/CMakeFiles/gas.dir/graph/properties.cpp.o" "gcc" "src/CMakeFiles/gas.dir/graph/properties.cpp.o.d"
  "/root/repo/src/lagraph/la_bc.cpp" "src/CMakeFiles/gas.dir/lagraph/la_bc.cpp.o" "gcc" "src/CMakeFiles/gas.dir/lagraph/la_bc.cpp.o.d"
  "/root/repo/src/lagraph/la_bfs.cpp" "src/CMakeFiles/gas.dir/lagraph/la_bfs.cpp.o" "gcc" "src/CMakeFiles/gas.dir/lagraph/la_bfs.cpp.o.d"
  "/root/repo/src/lagraph/la_bfs_fused.cpp" "src/CMakeFiles/gas.dir/lagraph/la_bfs_fused.cpp.o" "gcc" "src/CMakeFiles/gas.dir/lagraph/la_bfs_fused.cpp.o.d"
  "/root/repo/src/lagraph/la_bfs_pushpull.cpp" "src/CMakeFiles/gas.dir/lagraph/la_bfs_pushpull.cpp.o" "gcc" "src/CMakeFiles/gas.dir/lagraph/la_bfs_pushpull.cpp.o.d"
  "/root/repo/src/lagraph/la_cc.cpp" "src/CMakeFiles/gas.dir/lagraph/la_cc.cpp.o" "gcc" "src/CMakeFiles/gas.dir/lagraph/la_cc.cpp.o.d"
  "/root/repo/src/lagraph/la_kcore.cpp" "src/CMakeFiles/gas.dir/lagraph/la_kcore.cpp.o" "gcc" "src/CMakeFiles/gas.dir/lagraph/la_kcore.cpp.o.d"
  "/root/repo/src/lagraph/la_ktruss.cpp" "src/CMakeFiles/gas.dir/lagraph/la_ktruss.cpp.o" "gcc" "src/CMakeFiles/gas.dir/lagraph/la_ktruss.cpp.o.d"
  "/root/repo/src/lagraph/la_pr.cpp" "src/CMakeFiles/gas.dir/lagraph/la_pr.cpp.o" "gcc" "src/CMakeFiles/gas.dir/lagraph/la_pr.cpp.o.d"
  "/root/repo/src/lagraph/la_sssp.cpp" "src/CMakeFiles/gas.dir/lagraph/la_sssp.cpp.o" "gcc" "src/CMakeFiles/gas.dir/lagraph/la_sssp.cpp.o.d"
  "/root/repo/src/lagraph/la_tc.cpp" "src/CMakeFiles/gas.dir/lagraph/la_tc.cpp.o" "gcc" "src/CMakeFiles/gas.dir/lagraph/la_tc.cpp.o.d"
  "/root/repo/src/lonestar/ls_bc.cpp" "src/CMakeFiles/gas.dir/lonestar/ls_bc.cpp.o" "gcc" "src/CMakeFiles/gas.dir/lonestar/ls_bc.cpp.o.d"
  "/root/repo/src/lonestar/ls_bfs.cpp" "src/CMakeFiles/gas.dir/lonestar/ls_bfs.cpp.o" "gcc" "src/CMakeFiles/gas.dir/lonestar/ls_bfs.cpp.o.d"
  "/root/repo/src/lonestar/ls_bfs_dirop.cpp" "src/CMakeFiles/gas.dir/lonestar/ls_bfs_dirop.cpp.o" "gcc" "src/CMakeFiles/gas.dir/lonestar/ls_bfs_dirop.cpp.o.d"
  "/root/repo/src/lonestar/ls_cc.cpp" "src/CMakeFiles/gas.dir/lonestar/ls_cc.cpp.o" "gcc" "src/CMakeFiles/gas.dir/lonestar/ls_cc.cpp.o.d"
  "/root/repo/src/lonestar/ls_kcore.cpp" "src/CMakeFiles/gas.dir/lonestar/ls_kcore.cpp.o" "gcc" "src/CMakeFiles/gas.dir/lonestar/ls_kcore.cpp.o.d"
  "/root/repo/src/lonestar/ls_ktruss.cpp" "src/CMakeFiles/gas.dir/lonestar/ls_ktruss.cpp.o" "gcc" "src/CMakeFiles/gas.dir/lonestar/ls_ktruss.cpp.o.d"
  "/root/repo/src/lonestar/ls_pr.cpp" "src/CMakeFiles/gas.dir/lonestar/ls_pr.cpp.o" "gcc" "src/CMakeFiles/gas.dir/lonestar/ls_pr.cpp.o.d"
  "/root/repo/src/lonestar/ls_sssp.cpp" "src/CMakeFiles/gas.dir/lonestar/ls_sssp.cpp.o" "gcc" "src/CMakeFiles/gas.dir/lonestar/ls_sssp.cpp.o.d"
  "/root/repo/src/lonestar/ls_tc.cpp" "src/CMakeFiles/gas.dir/lonestar/ls_tc.cpp.o" "gcc" "src/CMakeFiles/gas.dir/lonestar/ls_tc.cpp.o.d"
  "/root/repo/src/matrix/backend.cpp" "src/CMakeFiles/gas.dir/matrix/backend.cpp.o" "gcc" "src/CMakeFiles/gas.dir/matrix/backend.cpp.o.d"
  "/root/repo/src/metrics/counters.cpp" "src/CMakeFiles/gas.dir/metrics/counters.cpp.o" "gcc" "src/CMakeFiles/gas.dir/metrics/counters.cpp.o.d"
  "/root/repo/src/runtime/thread_pool.cpp" "src/CMakeFiles/gas.dir/runtime/thread_pool.cpp.o" "gcc" "src/CMakeFiles/gas.dir/runtime/thread_pool.cpp.o.d"
  "/root/repo/src/support/check.cpp" "src/CMakeFiles/gas.dir/support/check.cpp.o" "gcc" "src/CMakeFiles/gas.dir/support/check.cpp.o.d"
  "/root/repo/src/support/format.cpp" "src/CMakeFiles/gas.dir/support/format.cpp.o" "gcc" "src/CMakeFiles/gas.dir/support/format.cpp.o.d"
  "/root/repo/src/support/memory_tracker.cpp" "src/CMakeFiles/gas.dir/support/memory_tracker.cpp.o" "gcc" "src/CMakeFiles/gas.dir/support/memory_tracker.cpp.o.d"
  "/root/repo/src/verify/reference.cpp" "src/CMakeFiles/gas.dir/verify/reference.cpp.o" "gcc" "src/CMakeFiles/gas.dir/verify/reference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
