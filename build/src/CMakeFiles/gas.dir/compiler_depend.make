# Empty compiler generated dependencies file for gas.
# This may be replaced when dependencies are built.
