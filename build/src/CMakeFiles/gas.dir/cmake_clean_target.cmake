file(REMOVE_RECURSE
  "libgas.a"
)
