# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_road_navigation "/root/repo/build/examples/road_navigation")
set_tests_properties(example_road_navigation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_social_network "/root/repo/build/examples/social_network_analysis")
set_tests_properties(example_social_network PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_matrix_semirings "/root/repo/build/examples/matrix_semirings")
set_tests_properties(example_matrix_semirings PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_run_workload "/root/repo/build/examples/run_workload" "bfs" "ls" "rmat22" "0.05")
set_tests_properties(example_run_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_run_workload_matrix "/root/repo/build/examples/run_workload" "tc" "gb" "indochina04" "0.05")
set_tests_properties(example_run_workload_matrix PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
