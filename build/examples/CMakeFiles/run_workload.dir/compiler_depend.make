# Empty compiler generated dependencies file for run_workload.
# This may be replaced when dependencies are built.
