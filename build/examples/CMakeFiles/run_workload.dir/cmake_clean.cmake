file(REMOVE_RECURSE
  "CMakeFiles/run_workload.dir/run_workload.cpp.o"
  "CMakeFiles/run_workload.dir/run_workload.cpp.o.d"
  "run_workload"
  "run_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
