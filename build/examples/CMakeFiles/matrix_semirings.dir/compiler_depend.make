# Empty compiler generated dependencies file for matrix_semirings.
# This may be replaced when dependencies are built.
