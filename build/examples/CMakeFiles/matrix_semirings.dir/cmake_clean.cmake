file(REMOVE_RECURSE
  "CMakeFiles/matrix_semirings.dir/matrix_semirings.cpp.o"
  "CMakeFiles/matrix_semirings.dir/matrix_semirings.cpp.o.d"
  "matrix_semirings"
  "matrix_semirings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_semirings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
