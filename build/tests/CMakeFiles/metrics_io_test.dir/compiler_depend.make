# Empty compiler generated dependencies file for metrics_io_test.
# This may be replaced when dependencies are built.
