file(REMOVE_RECURSE
  "CMakeFiles/metrics_io_test.dir/metrics_io_test.cpp.o"
  "CMakeFiles/metrics_io_test.dir/metrics_io_test.cpp.o.d"
  "metrics_io_test"
  "metrics_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
