# Empty dependencies file for runtime_stress_test.
# This may be replaced when dependencies are built.
