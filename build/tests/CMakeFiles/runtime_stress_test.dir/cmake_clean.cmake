file(REMOVE_RECURSE
  "CMakeFiles/runtime_stress_test.dir/runtime_stress_test.cpp.o"
  "CMakeFiles/runtime_stress_test.dir/runtime_stress_test.cpp.o.d"
  "runtime_stress_test"
  "runtime_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
