# Empty dependencies file for grb_vector_test.
# This may be replaced when dependencies are built.
