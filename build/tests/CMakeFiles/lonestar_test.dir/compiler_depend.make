# Empty compiler generated dependencies file for lonestar_test.
# This may be replaced when dependencies are built.
