file(REMOVE_RECURSE
  "CMakeFiles/lonestar_test.dir/lonestar_test.cpp.o"
  "CMakeFiles/lonestar_test.dir/lonestar_test.cpp.o.d"
  "lonestar_test"
  "lonestar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lonestar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
