file(REMOVE_RECURSE
  "CMakeFiles/grb_spgemm_ext_test.dir/grb_spgemm_ext_test.cpp.o"
  "CMakeFiles/grb_spgemm_ext_test.dir/grb_spgemm_ext_test.cpp.o.d"
  "grb_spgemm_ext_test"
  "grb_spgemm_ext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grb_spgemm_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
