# Empty compiler generated dependencies file for grb_spgemm_ext_test.
# This may be replaced when dependencies are built.
