# Empty dependencies file for grb_spgemm_test.
# This may be replaced when dependencies are built.
