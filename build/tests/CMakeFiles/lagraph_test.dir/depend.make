# Empty dependencies file for lagraph_test.
# This may be replaced when dependencies are built.
