file(REMOVE_RECURSE
  "CMakeFiles/lagraph_test.dir/lagraph_test.cpp.o"
  "CMakeFiles/lagraph_test.dir/lagraph_test.cpp.o.d"
  "lagraph_test"
  "lagraph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lagraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
