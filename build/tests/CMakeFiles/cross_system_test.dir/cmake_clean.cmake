file(REMOVE_RECURSE
  "CMakeFiles/cross_system_test.dir/cross_system_test.cpp.o"
  "CMakeFiles/cross_system_test.dir/cross_system_test.cpp.o.d"
  "cross_system_test"
  "cross_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
