# Empty compiler generated dependencies file for cross_system_test.
# This may be replaced when dependencies are built.
