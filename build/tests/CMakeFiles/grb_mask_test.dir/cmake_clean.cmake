file(REMOVE_RECURSE
  "CMakeFiles/grb_mask_test.dir/grb_mask_test.cpp.o"
  "CMakeFiles/grb_mask_test.dir/grb_mask_test.cpp.o.d"
  "grb_mask_test"
  "grb_mask_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grb_mask_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
