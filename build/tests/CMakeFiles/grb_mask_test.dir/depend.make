# Empty dependencies file for grb_mask_test.
# This may be replaced when dependencies are built.
