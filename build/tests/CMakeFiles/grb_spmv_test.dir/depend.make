# Empty dependencies file for grb_spmv_test.
# This may be replaced when dependencies are built.
