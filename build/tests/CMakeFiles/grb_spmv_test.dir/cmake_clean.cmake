file(REMOVE_RECURSE
  "CMakeFiles/grb_spmv_test.dir/grb_spmv_test.cpp.o"
  "CMakeFiles/grb_spmv_test.dir/grb_spmv_test.cpp.o.d"
  "grb_spmv_test"
  "grb_spmv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grb_spmv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
