file(REMOVE_RECURSE
  "CMakeFiles/grb_semiring_test.dir/grb_semiring_test.cpp.o"
  "CMakeFiles/grb_semiring_test.dir/grb_semiring_test.cpp.o.d"
  "grb_semiring_test"
  "grb_semiring_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grb_semiring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
