# Empty compiler generated dependencies file for grb_semiring_test.
# This may be replaced when dependencies are built.
