# Empty compiler generated dependencies file for grb_ops_vector_test.
# This may be replaced when dependencies are built.
