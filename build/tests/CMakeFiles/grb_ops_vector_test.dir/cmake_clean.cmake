file(REMOVE_RECURSE
  "CMakeFiles/grb_ops_vector_test.dir/grb_ops_vector_test.cpp.o"
  "CMakeFiles/grb_ops_vector_test.dir/grb_ops_vector_test.cpp.o.d"
  "grb_ops_vector_test"
  "grb_ops_vector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grb_ops_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
