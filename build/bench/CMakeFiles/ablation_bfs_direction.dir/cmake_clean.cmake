file(REMOVE_RECURSE
  "CMakeFiles/ablation_bfs_direction.dir/ablation_bfs_direction.cpp.o"
  "CMakeFiles/ablation_bfs_direction.dir/ablation_bfs_direction.cpp.o.d"
  "ablation_bfs_direction"
  "ablation_bfs_direction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bfs_direction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
