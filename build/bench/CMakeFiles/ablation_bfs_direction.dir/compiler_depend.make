# Empty compiler generated dependencies file for ablation_bfs_direction.
# This may be replaced when dependencies are built.
