# Empty compiler generated dependencies file for fig3_cc_variants.
# This may be replaced when dependencies are built.
