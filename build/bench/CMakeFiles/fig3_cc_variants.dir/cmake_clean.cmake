file(REMOVE_RECURSE
  "CMakeFiles/fig3_cc_variants.dir/fig3_cc_variants.cpp.o"
  "CMakeFiles/fig3_cc_variants.dir/fig3_cc_variants.cpp.o.d"
  "fig3_cc_variants"
  "fig3_cc_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_cc_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
