# Empty dependencies file for fig3_sssp_variants.
# This may be replaced when dependencies are built.
