file(REMOVE_RECURSE
  "CMakeFiles/fig2_scaling.dir/fig2_scaling.cpp.o"
  "CMakeFiles/fig2_scaling.dir/fig2_scaling.cpp.o.d"
  "fig2_scaling"
  "fig2_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
