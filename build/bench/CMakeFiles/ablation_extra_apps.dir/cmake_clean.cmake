file(REMOVE_RECURSE
  "CMakeFiles/ablation_extra_apps.dir/ablation_extra_apps.cpp.o"
  "CMakeFiles/ablation_extra_apps.dir/ablation_extra_apps.cpp.o.d"
  "ablation_extra_apps"
  "ablation_extra_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_extra_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
