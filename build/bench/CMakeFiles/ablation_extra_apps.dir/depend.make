# Empty dependencies file for ablation_extra_apps.
# This may be replaced when dependencies are built.
