file(REMOVE_RECURSE
  "CMakeFiles/fig3_tc_variants.dir/fig3_tc_variants.cpp.o"
  "CMakeFiles/fig3_tc_variants.dir/fig3_tc_variants.cpp.o.d"
  "fig3_tc_variants"
  "fig3_tc_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_tc_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
