file(REMOVE_RECURSE
  "CMakeFiles/table5_variant_counters.dir/table5_variant_counters.cpp.o"
  "CMakeFiles/table5_variant_counters.dir/table5_variant_counters.cpp.o.d"
  "table5_variant_counters"
  "table5_variant_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_variant_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
