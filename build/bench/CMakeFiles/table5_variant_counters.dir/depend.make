# Empty dependencies file for table5_variant_counters.
# This may be replaced when dependencies are built.
