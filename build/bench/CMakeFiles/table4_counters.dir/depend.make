# Empty dependencies file for table4_counters.
# This may be replaced when dependencies are built.
