file(REMOVE_RECURSE
  "CMakeFiles/table4_counters.dir/table4_counters.cpp.o"
  "CMakeFiles/table4_counters.dir/table4_counters.cpp.o.d"
  "table4_counters"
  "table4_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
