file(REMOVE_RECURSE
  "CMakeFiles/ablation_kernels.dir/ablation_kernels.cpp.o"
  "CMakeFiles/ablation_kernels.dir/ablation_kernels.cpp.o.d"
  "ablation_kernels"
  "ablation_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
