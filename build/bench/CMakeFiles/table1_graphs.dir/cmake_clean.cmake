file(REMOVE_RECURSE
  "CMakeFiles/table1_graphs.dir/table1_graphs.cpp.o"
  "CMakeFiles/table1_graphs.dir/table1_graphs.cpp.o.d"
  "table1_graphs"
  "table1_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
