# Empty dependencies file for table1_graphs.
# This may be replaced when dependencies are built.
