# Empty dependencies file for table2_runtime.
# This may be replaced when dependencies are built.
