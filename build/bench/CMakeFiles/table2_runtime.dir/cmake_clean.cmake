file(REMOVE_RECURSE
  "CMakeFiles/table2_runtime.dir/table2_runtime.cpp.o"
  "CMakeFiles/table2_runtime.dir/table2_runtime.cpp.o.d"
  "table2_runtime"
  "table2_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
